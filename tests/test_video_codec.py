"""Unit tests for the block-transform codec."""

import numpy as np
import pytest

from repro.video.codec import (
    FRAME_TYPE_INTRA,
    FRAME_TYPE_PREDICTED,
    FrameCodec,
    PlaneCodec,
    _entropy_decode,
    _entropy_encode,
    quant_matrix,
    _BASE_LUMA,
)
from repro.video.frame import Frame, psnr
from repro.video.quality import Quality


def textured_plane(height=32, width=48, seed=0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 6, width)
    y = np.linspace(0, 3, height)
    plane = 120 + 70 * np.sin(x)[None, :] * np.cos(y)[:, None] + rng.normal(0, 4, (height, width))
    return np.clip(plane, 0, 255).astype(np.uint8)


class TestQuantMatrix:
    def test_scale_one_is_base(self):
        assert np.array_equal(quant_matrix(_BASE_LUMA, 1.0), _BASE_LUMA)

    def test_steps_never_below_one(self):
        assert np.min(quant_matrix(_BASE_LUMA, 0.001)) >= 1.0

    def test_steps_capped(self):
        assert np.max(quant_matrix(_BASE_LUMA, 1e9)) <= 4096.0

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            quant_matrix(_BASE_LUMA, 0.0)


class TestEntropy:
    def test_round_trip_random(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(-30, 30, (10, 64)).astype(np.int32)
        rows[rng.uniform(size=rows.shape) < 0.8] = 0  # sparse, like real residuals
        assert np.array_equal(_entropy_decode(_entropy_encode(rows), 10), rows)

    def test_all_zero_blocks_are_tiny(self):
        rows = np.zeros((100, 64), dtype=np.int32)
        data = _entropy_encode(rows)
        assert len(data) <= 100 // 8 + 1  # one bit per skipped block

    def test_dense_block_round_trip(self):
        rows = np.full((1, 64), -1, dtype=np.int32)
        assert np.array_equal(_entropy_decode(_entropy_encode(rows), 1), rows)

    def test_single_trailing_coefficient(self):
        rows = np.zeros((1, 64), dtype=np.int32)
        rows[0, 63] = 7
        assert np.array_equal(_entropy_decode(_entropy_encode(rows), 1), rows)

    def test_corrupt_count_raises(self):
        from repro.video.bitstream import BitWriter

        writer = BitWriter()
        writer.write_ue(65)  # impossible coefficient count
        with pytest.raises(ValueError):
            _entropy_decode(writer.getvalue(), 1)


class TestPlaneCodec:
    def test_intra_round_trip_is_close(self):
        codec = PlaneCodec(quant_matrix(_BASE_LUMA, 1.0))
        plane = textured_plane()
        payload, reconstruction = codec.encode(plane, None)
        decoded = codec.decode(payload, 32, 48, None)
        assert np.array_equal(decoded, reconstruction)
        assert psnr(plane, decoded) > 35

    def test_coarser_quantiser_fewer_bytes(self):
        plane = textured_plane()
        fine, _ = PlaneCodec(quant_matrix(_BASE_LUMA, 1.0)).encode(plane, None)
        coarse, _ = PlaneCodec(quant_matrix(_BASE_LUMA, 10.0)).encode(plane, None)
        assert len(coarse) < len(fine)

    def test_predicted_identical_frame_is_tiny(self):
        codec = PlaneCodec(quant_matrix(_BASE_LUMA, 1.0))
        plane = textured_plane()
        _, reconstruction = codec.encode(plane, None)
        payload, second = codec.encode(reconstruction, reconstruction)
        assert len(payload) < 40  # all-skip blocks
        assert np.array_equal(second, reconstruction)

    def test_reference_shape_mismatch(self):
        codec = PlaneCodec(quant_matrix(_BASE_LUMA, 1.0))
        with pytest.raises(ValueError):
            codec.encode(textured_plane(), np.zeros((8, 8), dtype=np.uint8))

    def test_encoder_reconstruction_matches_decoder(self):
        codec = PlaneCodec(quant_matrix(_BASE_LUMA, 4.0))
        previous = None
        plane = textured_plane(seed=1)
        for step in range(3):
            shifted = np.roll(plane, step * 2, axis=1)
            payload, reconstruction = codec.encode(shifted, previous)
            decoded = codec.decode(payload, 32, 48, previous)
            assert np.array_equal(decoded, reconstruction)
            previous = reconstruction


class TestFrameCodec:
    def test_requires_multiple_of_16(self):
        codec = FrameCodec(Quality.HIGH)
        with pytest.raises(ValueError):
            codec.encode_frame(Frame.blank(24, 16), None)

    def test_intra_frame_type_byte(self):
        codec = FrameCodec(Quality.HIGH)
        data, _ = codec.encode_frame(Frame.blank(32, 16), None)
        assert data[0] == FRAME_TYPE_INTRA

    def test_predicted_frame_type_byte(self):
        codec = FrameCodec(Quality.HIGH)
        frame = Frame.blank(32, 16)
        _, recon = codec.encode_frame(frame, None)
        data, _ = codec.encode_frame(frame, recon)
        assert data[0] == FRAME_TYPE_PREDICTED

    def test_round_trip_quality_ordering(self):
        # Same-resolution rungs only: FrameCodec is resolution-agnostic;
        # downscaled rungs are handled (and ordered) at the GOP layer.
        frame = Frame.from_luma(textured_plane(32, 48))
        rungs = [quality for quality in Quality if quality.downscale == 1]
        results = {}
        for quality in rungs:
            codec = FrameCodec(quality)
            data, _ = codec.encode_frame(frame, None)
            decoded = codec.decode_frame(data, 48, 32, None)
            results[quality] = (len(data), psnr(frame, decoded))
        sizes = [results[quality][0] for quality in rungs]
        psnrs = [results[quality][1] for quality in rungs]
        assert sizes == sorted(sizes, reverse=True)  # better quality, more bytes
        assert psnrs == sorted(psnrs, reverse=True)

    def test_thumbnail_rung_is_smallest_via_gop(self):
        from repro.video.gop import GopCodec

        frames = [Frame.from_luma(textured_plane(32, 64, seed=3))]
        sizes = {
            quality: len(GopCodec(quality).encode_gop(frames)) for quality in Quality
        }
        assert sizes[Quality.THUMBNAIL] < sizes[Quality.LOWEST]
        decoded = GopCodec(Quality.THUMBNAIL).decode_gop(
            GopCodec(Quality.THUMBNAIL).encode_gop(frames)
        )
        assert (decoded[0].width, decoded[0].height) == (64, 32)

    def test_thumbnail_rejects_unaligned_dimensions(self):
        from repro.video.gop import GopCodec

        frames = [Frame.blank(48, 16)]  # not a multiple of 32
        with pytest.raises(ValueError):
            GopCodec(Quality.THUMBNAIL).encode_gop(frames)

    def test_predicted_requires_reference(self):
        codec = FrameCodec(Quality.HIGH)
        frame = Frame.blank(32, 16)
        _, recon = codec.encode_frame(frame, None)
        data, _ = codec.encode_frame(frame, recon)
        with pytest.raises(ValueError):
            codec.decode_frame(data, 32, 16, None)

    def test_unknown_frame_type(self):
        codec = FrameCodec(Quality.HIGH)
        with pytest.raises(ValueError):
            codec.decode_frame(b"\x07" + b"\x00" * 16, 32, 16, None)

    def test_truncated_payload(self):
        codec = FrameCodec(Quality.HIGH)
        data, _ = codec.encode_frame(Frame.blank(32, 16), None)
        with pytest.raises(ValueError):
            codec.decode_frame(data[: len(data) // 2], 32, 16, None)

    def test_empty_payload(self):
        with pytest.raises(ValueError):
            FrameCodec(Quality.HIGH).decode_frame(b"", 32, 16, None)

    def test_chroma_survives_round_trip(self):
        rgb = np.zeros((16, 32, 3), dtype=np.uint8)
        rgb[..., 0] = 200  # strongly red
        frame = Frame.from_rgb(rgb)
        codec = FrameCodec(Quality.HIGH)
        data, _ = codec.encode_frame(frame, None)
        decoded = codec.decode_frame(data, 32, 16, None)
        recovered = decoded.to_rgb()
        assert recovered[..., 0].mean() > 150
        assert recovered[..., 1].mean() < 80
