"""Tests for the VisualCloud facade."""

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    Scan,
    SessionConfig,
    TileGrid,
)
from repro.core.errors import CatalogError
from repro.predict.traces import HeadMovementModel
from repro.workloads.videos import synthetic_video

CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH, Quality.LOW),
    gop_frames=4,
    fps=4.0,
)


def load(db, name="clip", duration=2.0, seed=1):
    frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=duration, seed=seed)
    return db.ingest(name, frames, CONFIG)


class TestCatalogFacade:
    def test_fresh_db_is_empty(self, db):
        assert db.list_videos() == []

    def test_ingest_and_list(self, db):
        load(db)
        assert db.list_videos() == ["clip"]
        assert db.exists("clip")

    def test_meta_passthrough(self, db):
        load(db)
        assert db.meta("clip").gop_count == 2

    def test_drop(self, db):
        load(db)
        db.drop("clip")
        assert not db.exists("clip")

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.drop("ghost")

    def test_default_ingest_config(self, db):
        frames = synthetic_video(
            "venice", width=128, height=64, fps=30.0, duration=1.0, seed=0
        )
        meta = db.ingest("default", frames)
        assert meta.grid == TileGrid(4, 4)


class TestServeFacade:
    def test_serve_round_trip(self, db):
        load(db, duration=3.0)
        trace = HeadMovementModel().generate(3.0, rate=10.0, seed=2)
        report = db.serve(
            "clip",
            (
                trace,
                SessionConfig(
                    policy=NaiveFullQuality(), bandwidth=ConstantBandwidth(1e6)
                ),
            ),
        )
        assert len(report.records) == 3

    def test_train_predictor_then_markov_session(self, db):
        load(db, duration=3.0)
        corpus = HeadMovementModel().generate_corpus(2, 3.0, rate=10.0, seed=4)
        db.train_predictor("clip", corpus)
        trace = HeadMovementModel().generate(3.0, rate=10.0, seed=5)
        report = db.serve(
            "clip",
            (
                trace,
                SessionConfig(
                    policy=PredictiveTilingPolicy(),
                    bandwidth=ConstantBandwidth(1e6),
                    predictor="markov",
                ),
            ),
        )
        assert len(report.records) == 3


class TestStatsFacade:
    def test_stats_merges_metrics_registry(self, db):
        load(db, duration=3.0)
        trace = HeadMovementModel().generate(3.0, rate=10.0, seed=2)
        db.serve(
            "clip",
            (
                trace,
                SessionConfig(
                    policy=NaiveFullQuality(), bandwidth=ConstantBandwidth(1e6)
                ),
            ),
        )
        snapshot = db.stats()
        assert "clip" in snapshot["videos"]
        metrics = snapshot["metrics"]
        assert metrics["counters"]["storage.segments_written"] > 0
        assert metrics["counters"]["storage.segments_read"] > 0
        assert any(key.startswith("stream.windows") for key in metrics["counters"])
        assert metrics["histograms"]["storage.read_segment.seconds"]["count"] > 0

    def test_one_registry_spans_all_components(self, db):
        assert db.storage.metrics is db.metrics
        assert db.prediction.metrics is db.metrics
        assert db.streamer.metrics is db.metrics
        assert db.shared_streamer.metrics is db.metrics
        assert db.storage.segment_cache.metrics is db.metrics


class TestQueryFacade:
    def test_execute_and_append(self, db):
        load(db, duration=2.0)
        from repro.core import udfs

        db.execute(Scan("clip").map(udfs.grayscale).store("gray"))
        assert "gray" in db.list_videos()
        meta = db.append("clip", synthetic_video(
            "venice", width=64, height=32, fps=4.0, duration=1.0, seed=9
        ))
        assert meta.gop_count == 3
