"""Unit tests for bit I/O and exp-Golomb codes."""

import pytest

from repro.video.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        writer = BitWriter()
        writer.write(0xAB, 8)
        assert writer.getvalue() == b"\xab"

    def test_partial_byte_padded(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        assert writer.getvalue() == bytes([0b1010_0000])

    def test_crosses_byte_boundary(self):
        writer = BitWriter()
        writer.write(0b1111, 4)
        writer.write(0b000011, 6)
        assert writer.getvalue() == bytes([0b1111_0000, 0b1100_0000])

    def test_rejects_value_too_wide(self):
        with pytest.raises(ValueError):
            BitWriter().write(8, 3)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            BitWriter().write(0, -1)

    def test_len_counts_bits(self):
        writer = BitWriter()
        writer.write(1, 5)
        writer.write(1, 9)
        assert len(writer) == 14

    def test_zero_bit_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.getvalue() == b""


class TestBitReader:
    def test_reads_back_writes(self):
        writer = BitWriter()
        for value, nbits in [(5, 3), (0, 2), (1023, 10), (1, 1)]:
            writer.write(value, nbits)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 5
        assert reader.read(2) == 0
        assert reader.read(10) == 1023
        assert reader.read(1) == 1

    def test_eof(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read(3)
        assert reader.bits_remaining == 13

    def test_wide_read(self):
        writer = BitWriter()
        writer.write(0x1234_5678_9ABC, 48)
        assert BitReader(writer.getvalue()).read(48) == 0x1234_5678_9ABC


class TestExpGolomb:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 63, 64, 255, 100_000])
    def test_unsigned_round_trip(self, value):
        writer = BitWriter()
        writer.write_ue(value)
        assert BitReader(writer.getvalue()).read_ue() == value

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 17, -17, 4095, -4096])
    def test_signed_round_trip(self, value):
        writer = BitWriter()
        writer.write_se(value)
        assert BitReader(writer.getvalue()).read_se() == value

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_ue(-1)

    def test_known_codewords(self):
        # Classic table: 0 -> '1', 1 -> '010', 2 -> '011', 3 -> '00100'.
        for value, bits in [(0, "1"), (1, "010"), (2, "011"), (3, "00100")]:
            writer = BitWriter()
            writer.write_ue(value)
            assert len(writer) == len(bits)
            as_int = int(bits, 2)
            reader = BitReader(writer.getvalue())
            assert reader.read(len(bits)) == as_int

    def test_small_values_are_short(self):
        short = BitWriter()
        short.write_ue(0)
        long = BitWriter()
        long.write_ue(1000)
        assert len(short) < len(long)

    def test_sequence_round_trip(self):
        values = list(range(0, 40))
        writer = BitWriter()
        for value in values:
            writer.write_ue(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_ue() for _ in values] == values

    def test_malformed_prefix_raises(self):
        reader = BitReader(b"\x00" * 10)
        with pytest.raises(ValueError):
            reader.read_ue()
