"""Differential tests: the zero-copy wire paths vs the reference encoder.

The serve fast path writes responses as unconcatenated buffer tuples
(``_Response.parts``, ``_Precomputed``, ``PinnedSegment``) instead of one
joined ``bytes``. These tests pin the invariant that makes that safe:
joining the parts of *any* response reproduces ``_Response.encode``
byte for byte, across every status / keep-alive / error / retry-after /
body combination the server can emit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.storage import checksum_hex
from repro.serve.hotset import PinnedSegment, _header_block
from repro.serve.server import _REASONS, _Precomputed, _Response

# Header fields are encoded as ASCII and terminated by CRLF; the server
# only ever inserts exception class names and MIME types there.
_header_text = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E), max_size=40
)

_responses = st.builds(
    _Response,
    status=st.one_of(st.sampled_from(sorted(_REASONS)), st.integers(100, 599)),
    body=st.binary(max_size=4096),
    content_type=st.sampled_from(
        ["application/octet-stream", "application/json", "text/plain"]
    ),
    error=_header_text,
    retry_after=st.one_of(
        st.none(), st.floats(min_value=0.001, max_value=3600.0, allow_nan=False)
    ),
    checksum=st.one_of(st.just(""), st.from_regex(r"[0-9a-f]{8}", fullmatch=True)),
)


class TestPartsMatchEncode:
    @settings(max_examples=200, deadline=None)
    @given(response=_responses, keep_alive=st.booleans())
    def test_joined_parts_equal_encode(self, response, keep_alive):
        assert b"".join(response.parts(keep_alive)) == response.encode(keep_alive)

    @settings(max_examples=100, deadline=None)
    @given(response=_responses, keep_alive=st.booleans())
    def test_precomputed_freezes_the_same_bytes(self, response, keep_alive):
        frozen = _Precomputed(response)
        assert b"".join(frozen.parts(keep_alive)) == response.encode(keep_alive)
        assert frozen.status == response.status
        assert frozen.body_length == response.body_length

    @given(response=_responses, keep_alive=st.booleans())
    def test_empty_body_emits_a_single_buffer(self, response, keep_alive):
        parts = response.parts(keep_alive)
        if response.body:
            assert len(parts) == 2
        else:
            assert len(parts) == 1

    @given(body=st.binary(max_size=4096), keep_alive=st.booleans())
    def test_segment_hit_shape_is_exact(self, body, keep_alive):
        """The exact response class the cold segment path emits."""
        response = _Response(200, body, checksum=checksum_hex(body))
        wire = b"".join(response.parts(keep_alive))
        assert wire == response.encode(keep_alive)
        connection = b"keep-alive" if keep_alive else b"close"
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: " + connection + b"\r\n" in wire
        assert ("X-Checksum: %s\r\n" % checksum_hex(body)).encode("ascii") in wire
        assert wire.endswith(body)


class TestPinnedSegmentWireIdentity:
    @settings(max_examples=200, deadline=None)
    @given(body=st.binary(max_size=4096), keep_alive=st.booleans())
    def test_pinned_bytes_equal_cold_path_bytes(self, body, keep_alive):
        """A pin hit and a cold read must be indistinguishable on the wire."""
        pinned = PinnedSegment("/segment/clip/0/0/0/high", body)
        reference = _Response(200, body, checksum=checksum_hex(body))
        assert b"".join(pinned.parts(keep_alive)) == reference.encode(keep_alive)

    @given(length=st.integers(min_value=0, max_value=10**9), keep_alive=st.booleans())
    def test_header_block_matches_response_head(self, length, keep_alive):
        body = b"\0" * min(length, 4096)
        checksum = checksum_hex(body)
        bare = _Response(200, body)
        assert _header_block(len(body), keep_alive) == bare._head(keep_alive)
        stamped = _Response(200, body, checksum=checksum)
        assert _header_block(len(body), keep_alive, checksum) == stamped._head(
            keep_alive
        )

    def test_pinned_body_is_shared_not_copied(self):
        body = b"payload" * 100
        pinned = PinnedSegment("/segment/x", body)
        head, view = pinned.parts(True)
        assert isinstance(view, memoryview)
        assert view.obj is pinned.body
        assert bytes(view) == body
