"""Tests for the procedural video and viewer-population generators."""

import numpy as np
import pytest

from repro.video.gop import GopCodec
from repro.video.quality import Quality
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import (
    PROFILES,
    checkerboard_video,
    solid_video,
    synthetic_video,
)


class TestSyntheticVideo:
    def test_frame_count_and_dimensions(self):
        frames = list(synthetic_video("venice", width=64, height=32, fps=10, duration=1.0))
        assert len(frames) == 10
        assert frames[0].width == 64
        assert frames[0].height == 32

    def test_deterministic_per_seed(self):
        a = list(synthetic_video("venice", width=64, height=32, duration=0.2, seed=1))
        b = list(synthetic_video("venice", width=64, height=32, duration=0.2, seed=1))
        assert all(x.equals(y) for x, y in zip(a, b))

    def test_seeds_differ(self):
        a = next(iter(synthetic_video("venice", width=64, height=32, seed=1)))
        b = next(iter(synthetic_video("venice", width=64, height=32, seed=2)))
        assert not a.equals(b)

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            list(synthetic_video("nope", width=64, height=32))

    def test_rejects_unaligned_dimensions(self):
        with pytest.raises(ValueError):
            list(synthetic_video("venice", width=60, height=32))

    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            list(synthetic_video("venice", width=64, height=32, duration=0.0))

    def test_content_wraps_at_seam(self):
        """The azimuth seam must be continuous: columns 0 and -1 close."""
        profile = PROFILES["timelapse"]
        frame = next(iter(synthetic_video(profile, width=128, height=32, seed=3)))
        seam_jump = np.abs(frame.y[:, 0].astype(int) - frame.y[:, -1].astype(int))
        interior_jump = np.abs(frame.y[:, 64].astype(int) - frame.y[:, 63].astype(int))
        assert np.mean(seam_jump) < np.mean(interior_jump) + 12

    def test_profiles_order_by_temporal_change(self):
        """Coaster (global pan) must cost more P-frame bits than timelapse."""
        def gop_size(profile):
            frames = list(
                synthetic_video(profile, width=64, height=32, fps=8, duration=1.0, seed=4)
            )
            return len(GopCodec(Quality.HIGH).encode_gop(frames))

        assert gop_size("coaster") > gop_size("timelapse")

    def test_all_profiles_generate(self):
        for name in PROFILES:
            frames = list(
                synthetic_video(name, width=64, height=32, fps=4, duration=0.5, seed=0)
            )
            assert len(frames) == 2


class TestTestPatterns:
    def test_solid_video(self):
        frames = solid_video(32, 16, frames=3, luma=9)
        assert len(frames) == 3
        assert np.all(frames[0].y == 9)

    def test_checkerboard_moves(self):
        frames = checkerboard_video(32, 16, frames=3, step=4)
        assert not frames[0].equals(frames[1])

    def test_checkerboard_values(self):
        frame = checkerboard_video(32, 16, frames=1)[0]
        assert set(np.unique(frame.y)) == {28, 228}


class TestViewerPopulation:
    def test_traces_deterministic(self):
        a = ViewerPopulation(seed=1).trace(0, duration=2.0, rate=10)
        b = ViewerPopulation(seed=1).trace(0, duration=2.0, rate=10)
        assert np.array_equal(a.thetas, b.thetas)

    def test_users_differ(self):
        population = ViewerPopulation(seed=1)
        a = population.trace(0, duration=2.0, rate=10)
        b = population.trace(1, duration=2.0, rate=10)
        assert not np.array_equal(a.thetas, b.thetas)

    def test_traces_count(self):
        traces = ViewerPopulation(seed=0).traces(3, duration=1.0, rate=10)
        assert len(traces) == 3

    def test_traces_rejects_zero(self):
        with pytest.raises(ValueError):
            ViewerPopulation().traces(0, duration=1.0)

    def test_arrivals_sorted_in_horizon(self):
        arrivals = ViewerPopulation(seed=2).arrivals(10, horizon=60.0)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 60.0 for t in arrivals)

    def test_split_disjoint_and_complete(self):
        train, test = ViewerPopulation().split(10, train_fraction=0.6)
        assert len(train) == 6
        assert len(test) == 4
        assert not set(train) & set(test)

    def test_split_never_empty(self):
        train, test = ViewerPopulation().split(2, train_fraction=0.99)
        assert train and test

    def test_split_validates_fraction(self):
        with pytest.raises(ValueError):
            ViewerPopulation().split(4, train_fraction=1.0)


class TestBenchHarness:
    def test_format_bytes(self):
        from repro.bench import format_bytes

        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"

    def test_format_bytes_rejects_negative(self):
        from repro.bench import format_bytes

        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_ratio(self):
        from repro.bench import ratio

        assert ratio(10, 5) == "2.00x"
        assert ratio(1000, 5) == "200x"
        assert ratio(1, 0) == "inf x"

    def test_format_table_alignment(self):
        from repro.bench import format_table

        table = format_table("demo", [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = table.splitlines()
        assert lines[0] == "== demo =="
        assert len(lines) == 5  # title, header, rule, two rows
        assert len(lines[2]) == len(lines[1])

    def test_geometric_mean(self):
        from repro.bench import geometric_mean

        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
