"""The wire client's error contract and chaos-over-the-wire resilience.

Mirrors ``tests/test_failure_injection.py`` for the new transport: every
network failure mode — refused connections, dead sockets, server-side
faults — must surface as the PR 3 error taxonomy
(``TransientSegmentError``/``SegmentReadTimeout``/…), never as a raw
``OSError``/``ConnectionError``. That contract is what lets
``read_window_resilient`` drive retry → degrade → skip over a real
socket exactly as it does over a faulty disk.
"""

import socket
import threading

import pytest

from repro import FaultPlan, FaultRule, Quality, RetryPolicy, SessionConfig
from repro.chaos.wrappers import ChaosStorageManager
from repro.core.errors import (
    SegmentCorruptError,
    SegmentNotFoundError,
    SegmentReadTimeout,
    TransientSegmentError,
    VisualCloudError,
)
from repro.serve import (
    HttpSegmentClient,
    RemoteStorage,
    ServerConfig,
    serve_session,
    start_server,
)
from repro.stream.abr import UniformAdaptive
from repro.stream.dash import SegmentKey
from repro.stream.network import ConstantBandwidth
from repro.workloads.users import ViewerPopulation


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestTransportErrorTaxonomy:
    """Raw socket failures must leave the client as taxonomy errors."""

    def test_refused_connection_is_transient(self):
        client = HttpSegmentClient(f"http://127.0.0.1:{_free_port()}")
        with pytest.raises(TransientSegmentError):
            client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))

    def test_refused_manifest_is_transient(self):
        client = HttpSegmentClient(f"http://127.0.0.1:{_free_port()}")
        with pytest.raises(TransientSegmentError):
            client.fetch_manifest("clip")

    def test_unresponsive_socket_is_a_timeout(self):
        # A listener that accepts but never answers: the read must give
        # up within the client budget and surface as the taxonomy's
        # timeout, not socket.timeout.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = HttpSegmentClient(f"http://127.0.0.1:{port}", timeout=0.2)
            with pytest.raises(SegmentReadTimeout):
                client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))
        finally:
            listener.close()

    def test_mid_response_disconnect_is_transient(self):
        # A server that closes the socket after half a status line.
        done = threading.Event()

        def half_answer(listener):
            connection, _ = listener.accept()
            connection.recv(1024)
            connection.sendall(b"HTTP/1.1 20")
            connection.close()
            done.set()

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        thread = threading.Thread(target=half_answer, args=(listener,), daemon=True)
        thread.start()
        try:
            client = HttpSegmentClient(
                f"http://127.0.0.1:{listener.getsockname()[1]}", timeout=1.0
            )
            with pytest.raises(TransientSegmentError):
                client.fetch_manifest("clip")
            assert done.wait(timeout=2.0)
        finally:
            listener.close()

    def test_no_raw_oserror_escapes(self):
        # The regression this suite exists for: catching VisualCloudError
        # must be sufficient for any wire failure.
        client = HttpSegmentClient(f"http://127.0.0.1:{_free_port()}")
        try:
            client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))
        except VisualCloudError:
            pass  # the contract
        except (OSError, ConnectionError) as error:  # pragma: no cover
            pytest.fail(f"raw transport error leaked: {type(error).__name__}")


@pytest.fixture()
def chaos_server(session_db):
    """A server whose storage injects one fault kind per quality rung."""

    def start(rules, config=None):
        plan = FaultPlan(rules=rules, seed=3)
        chaos = ChaosStorageManager(session_db.storage, plan)
        handle = start_server(chaos, config)
        handles.append(handle)
        return handle

    handles = []
    yield start
    for handle in handles:
        handle.stop()


class TestServerSideFaultMapping:
    """Chaos faults behind the server come back as the same taxonomy."""

    def test_missing_fault_maps_to_not_found(self, chaos_server):
        handle = chaos_server([FaultRule(kind="missing", every=1)])
        with HttpSegmentClient(handle.base_url) as client:
            with pytest.raises(SegmentNotFoundError):
                client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))

    def test_corrupt_fault_maps_to_corrupt(self, chaos_server):
        handle = chaos_server([FaultRule(kind="corrupt", every=1)])
        with HttpSegmentClient(handle.base_url) as client:
            with pytest.raises(SegmentCorruptError):
                client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))

    def test_flaky_fault_maps_to_transient(self, chaos_server):
        handle = chaos_server([FaultRule(kind="flaky", every=1)])
        with HttpSegmentClient(handle.base_url) as client:
            with pytest.raises(TransientSegmentError):
                client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))

    def test_slow_fault_maps_to_timeout(self, chaos_server):
        handle = chaos_server(
            [FaultRule(kind="slow", every=1, delay=2.0)],
            config=ServerConfig(read_timeout=0.2),
        )
        with HttpSegmentClient(handle.base_url) as client:
            with pytest.raises(SegmentReadTimeout):
                client.fetch_segment("clip", SegmentKey(0, (0, 0), Quality.HIGH))


class TestChaosOverTheWire:
    """End-to-end: the resilience ladder runs across the socket."""

    def _config(self):
        return SessionConfig(
            policy=UniformAdaptive(),
            bandwidth=ConstantBandwidth(200_000),
            predictor="static",
            retry=RetryPolicy(attempts=2),
        )

    def _trace(self, session_db):
        meta = session_db.meta("clip")
        return ViewerPopulation(seed=1).trace(0, duration=meta.duration, rate=10.0)

    def test_flaky_reads_retry_and_heal(self, session_db, chaos_server):
        handle = chaos_server([FaultRule(kind="flaky", every=5)])
        report = serve_session(
            handle.base_url, "clip", self._trace(session_db), self._config()
        )
        meta = session_db.meta("clip")
        assert len(report.records) == meta.gop_count  # session completed
        assert report.retry_count > 0

    def test_persistent_misses_degrade_down_the_ladder(self, session_db, chaos_server):
        handle = chaos_server(
            [FaultRule(kind="missing", every=1, quality="high")]
        )
        report = serve_session(
            handle.base_url, "clip", self._trace(session_db), self._config()
        )
        meta = session_db.meta("clip")
        assert len(report.records) == meta.gop_count
        degrades = [
            event
            for record in report.records
            for event in record.events
            if event.kind == "degrade"
        ]
        assert degrades, "high-rung loss must degrade, not kill the session"
        assert all(event.delivered < event.requested for event in degrades)

    def test_total_loss_skips_tiles_but_completes(self, session_db, chaos_server):
        handle = chaos_server([FaultRule(kind="missing", every=1, tile=(0, 0))])
        report = serve_session(
            handle.base_url, "clip", self._trace(session_db), self._config()
        )
        meta = session_db.meta("clip")
        assert len(report.records) == meta.gop_count
        skips = [
            event
            for record in report.records
            for event in record.events
            if event.kind == "skip"
        ]
        assert skips and all(event.tile == (0, 0) for event in skips)


class TestRemoteStorageAdapter:
    def test_rejects_pinned_versions(self, session_db):
        handle = start_server(session_db.storage)
        try:
            with HttpSegmentClient(handle.base_url) as client:
                storage = RemoteStorage(client)
                with pytest.raises(ValueError):
                    storage.read_segment("clip", 0, (0, 0), Quality.HIGH, version=1)
        finally:
            handle.stop()

    def test_manifest_is_cached_per_name(self, session_db):
        handle = start_server(session_db.storage)
        try:
            with HttpSegmentClient(handle.base_url) as client:
                storage = RemoteStorage(client)
                first = storage.build_manifest("clip")
                assert storage.build_manifest("clip") is first
        finally:
            handle.stop()

    def test_evaluate_quality_is_rejected_over_the_wire(self, session_db):
        config = SessionConfig(
            policy=UniformAdaptive(),
            bandwidth=ConstantBandwidth(200_000),
            evaluate_quality=True,
        )
        with pytest.raises(ValueError):
            serve_session("http://127.0.0.1:1", "clip", None, config)


class TestStatusMapping:
    """_raise_for_status: every shed/unknown status stays in the taxonomy."""

    @staticmethod
    def _raise(status, headers=None, body=b"{}"):
        HttpSegmentClient._raise_for_status(status, headers or {}, body, "/x")

    def test_429_maps_to_transient(self):
        with pytest.raises(TransientSegmentError) as caught:
            self._raise(429, {"Retry-After": "0.5"})
        assert caught.value.status == 429
        assert caught.value.retry_after == 0.5

    def test_unknown_5xx_maps_to_transient(self):
        with pytest.raises(TransientSegmentError) as caught:
            self._raise(500)
        assert caught.value.status == 500
        assert not hasattr(caught.value, "retry_after")

    def test_unparseable_retry_after_is_ignored(self):
        with pytest.raises(TransientSegmentError) as caught:
            self._raise(503, {"Retry-After": "soon"})
        assert not hasattr(caught.value, "retry_after")

    def test_404_and_409_and_504_keep_their_types(self):
        with pytest.raises(SegmentNotFoundError):
            self._raise(404)
        with pytest.raises(SegmentCorruptError):
            self._raise(409)
        with pytest.raises(SegmentReadTimeout):
            self._raise(504)
