"""The predictive control plane: forecaster, planner, controller, wire.

Four layers, tested in the order they compose:

* golden-value tests pin the Holt (EWMA + trend) arithmetic — a changed
  smoothing constant or update order shows up as an exact-number diff;
* property tests pin the planner's purity (same inputs, byte-identical
  plan) and its versioning/rollback contract;
* controller step tests drive the loop with scripted metrics snapshots —
  the same injection the chaos harness uses for deterministic replay;
* wire tests apply plans to a live server through both actuators,
  including the tier-resizing case: a plan enabling pinning on a server
  that booted with a zero pin budget.

The e2e flash-crowd test at the bottom is the acceptance story in
miniature: ramp demand against a cold server and assert the controller
pins the spiking video's segments while the observed rate is still below
its peak — pre-warm means *before*, not after.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.control import (
    ClusterConfig,
    ControlConfig,
    ControlPlan,
    Controller,
    EwmaTrendForecaster,
    Forecast,
    HandleActuator,
    HttpActuator,
    NodePlan,
    NodeState,
    Planner,
    StalePlanError,
    catalog_from_storage,
    diff_plans,
    make_forecaster,
)
from repro.obs import MetricsRegistry
from repro.serve import HttpSegmentClient, ServerConfig, start_server


class TestForecasterGolden:
    """Exact Holt arithmetic: alpha=0.4, beta=0.3, horizon=2, worked by
    hand. A refactor that changes update order breaks these precisely."""

    def test_first_observation_seeds_the_level(self):
        f = EwmaTrendForecaster(alpha=0.4, beta=0.3, horizon=2.0)
        forecast = f.observe("v", 10.0)
        assert forecast.level == 10.0
        assert forecast.trend == 0.0
        assert forecast.predicted == 10.0
        assert forecast.observations == 1

    def test_two_step_golden_values(self):
        f = EwmaTrendForecaster(alpha=0.4, beta=0.3, horizon=2.0)
        f.observe("v", 10.0)
        forecast = f.observe("v", 20.0)
        # level = 0.4*20 + 0.6*(10 + 0) = 14
        # trend = 0.3*(14 - 10) + 0.7*0 = 1.2
        assert forecast.level == pytest.approx(14.0)
        assert forecast.trend == pytest.approx(1.2)
        assert forecast.predicted == pytest.approx(14.0 + 2.0 * 1.2)

    def test_three_step_golden_values(self):
        f = EwmaTrendForecaster(alpha=0.4, beta=0.3, horizon=2.0)
        f.observe("v", 10.0)
        f.observe("v", 20.0)
        forecast = f.observe("v", 40.0)
        # level = 0.4*40 + 0.6*(14 + 1.2)   = 25.12
        # trend = 0.3*(25.12 - 14) + 0.7*1.2 = 4.176
        assert forecast.level == pytest.approx(25.12)
        assert forecast.trend == pytest.approx(4.176)
        assert forecast.predicted == pytest.approx(25.12 + 2.0 * 4.176)

    def test_ramp_predicts_ahead_of_observation(self):
        """The flash-crowd property: during a ramp the prediction runs
        ahead of the latest observed value — that gap is what buys the
        planner its pre-warm lead time."""
        f = EwmaTrendForecaster(alpha=0.4, beta=0.3, horizon=2.0)
        for value in (10.0, 20.0, 30.0, 40.0, 50.0):
            forecast = f.observe("v", value)
        assert forecast.trend > 0
        assert forecast.predicted > 50.0

    def test_prediction_floors_at_zero(self):
        f = EwmaTrendForecaster(alpha=0.4, beta=0.3, horizon=2.0)
        for value in (10.0, 0.0, 0.0):
            forecast = f.observe("v", value)
        # level 2.88, trend -1.776: raw prediction is negative.
        assert forecast.level + 2.0 * forecast.trend < 0
        assert forecast.predicted == 0.0

    def test_unobserved_key_is_zero(self):
        f = EwmaTrendForecaster()
        forecast = f.forecast("never-seen")
        assert forecast == Forecast(
            key="never-seen", level=0.0, trend=0.0, predicted=0.0, observations=0
        )

    def test_forecasts_are_key_sorted(self):
        f = EwmaTrendForecaster()
        for key in ("zeta", "alpha", "mid"):
            f.observe(key, 1.0)
        assert list(f.forecasts()) == ["alpha", "mid", "zeta"]

    @pytest.mark.parametrize(
        "kwargs", [{"alpha": 0.0}, {"alpha": 1.5}, {"beta": 0.0}, {"horizon": -1.0}]
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ValueError):
            EwmaTrendForecaster(**kwargs)

    def test_unknown_forecaster_kind(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("oracle", 0.4, 0.3, 2.0)


def _forecast(key: str, predicted: float) -> Forecast:
    return Forecast(
        key=key, level=predicted, trend=0.0, predicted=predicted, observations=3
    )


CATALOG = {
    "vid-0": (
        ("/segment/vid-0/0/0/0/high", 1.0, 100),
        ("/segment/vid-0/0/0/1/high", 0.5, 100),
        ("/segment/vid-0/0/0/0/low", 0.25, 50),
    ),
    "vid-1": (("/segment/vid-1/0/0/0/high", 1.0, 100),),
}


class TestPlanner:
    def test_prewarm_ranks_hottest_first_and_fills_the_budget(self):
        planner = Planner(prewarm_threshold=1.0)
        plan = planner.plan(
            {"vid-0": _forecast("vid-0", 10.0), "vid-1": _forecast("vid-1", 2.0)},
            CATALOG,
            (NodeState(node_id="", pin_budget_bytes=250),),
        )
        node = plan.node("")
        paths = [path for path, _ in node.prewarm]
        # Heats: vid-0 high 1000, half-weight 500, low 250; vid-1 200.
        # The 250-byte budget takes the two 100-byte segments, then the
        # 50-byte low rung exactly fills it; vid-1's never fits.
        assert paths == [
            "/segment/vid-0/0/0/0/high",
            "/segment/vid-0/0/0/1/high",
            "/segment/vid-0/0/0/0/low",
        ]
        heats = [heat for _, heat in node.prewarm]
        assert heats == sorted(heats, reverse=True)

    def test_below_threshold_videos_are_not_warmed(self):
        planner = Planner(prewarm_threshold=5.0)
        plan = planner.plan(
            {"vid-0": _forecast("vid-0", 10.0), "vid-1": _forecast("vid-1", 2.0)},
            CATALOG,
            (NodeState(node_id="", pin_budget_bytes=10_000),),
        )
        assert all(
            path.startswith("/segment/vid-0/") for path, _ in plan.node("").prewarm
        )

    def test_zero_budget_node_gets_no_prewarm(self):
        plan = Planner().plan(
            {"vid-0": _forecast("vid-0", 10.0)},
            CATALOG,
            (NodeState(node_id="", pin_budget_bytes=0),),
        )
        assert plan.node("").prewarm == ()

    def test_owned_paths_restrict_prewarm(self):
        owned = ("/segment/vid-0/0/0/1/high",)
        plan = Planner().plan(
            {"vid-0": _forecast("vid-0", 10.0)},
            CATALOG,
            (NodeState(node_id="node-0", pin_budget_bytes=10_000, owned=owned),),
        )
        assert [path for path, _ in plan.node("node-0").prewarm] == list(owned)

    def test_nan_p99_holds_admission(self):
        state = NodeState(node_id="", max_inflight=32)
        plan = Planner().plan({}, {}, (state,), observed_p99=math.nan)
        assert plan.node("").max_inflight == 32

    def test_breach_halves_inflight_with_floor(self):
        planner = Planner(slo_p99=0.25, min_inflight=4, decrease_factor=0.5)
        state = NodeState(node_id="", max_inflight=32)
        plan = planner.plan({}, {}, (state,), observed_p99=0.5)
        assert plan.node("").max_inflight == 16
        plan = planner.plan(
            {}, {}, (NodeState(node_id="", max_inflight=5),), observed_p99=0.5
        )
        assert plan.node("").max_inflight == 4  # floored, not 2

    def test_breach_on_unbounded_node_imposes_the_fallback(self):
        planner = Planner(fallback_inflight=64)
        plan = planner.plan(
            {}, {}, (NodeState(node_id="", max_inflight=None),), observed_p99=1.0
        )
        assert plan.node("").max_inflight == 64

    def test_headroom_raises_additively_to_the_ceiling(self):
        planner = Planner(
            slo_p99=0.25, slo_headroom=0.5, increase_step=4, inflight_ceiling=40
        )
        state = NodeState(node_id="", max_inflight=38)
        plan = planner.plan({}, {}, (state,), observed_p99=0.01)
        assert plan.node("").max_inflight == 40  # 38 + 4 capped at 40

    def test_inside_slo_without_headroom_holds(self):
        planner = Planner(slo_p99=0.25, slo_headroom=0.5)
        state = NodeState(node_id="", max_inflight=16)
        plan = planner.plan({}, {}, (state,), observed_p99=0.2)
        assert plan.node("").max_inflight == 16

    def test_process_recommendation_scales_with_demand(self):
        planner = Planner(requests_per_process=100.0, max_processes=8)
        plan = planner.plan(
            {"vid-0": _forecast("vid-0", 350.0)},
            CATALOG,
            (NodeState(node_id="", processes=1),),
        )
        assert plan.node("").processes == 4  # ceil(350/100)
        plan = planner.plan(
            {"vid-0": _forecast("vid-0", 5000.0)},
            CATALOG,
            (NodeState(node_id="", processes=1),),
        )
        assert plan.node("").processes == 8  # capped

    def test_versions_are_monotonic(self):
        planner = Planner()
        first = planner.plan({}, {}, (NodeState(node_id=""),))
        second = planner.plan({}, {}, (NodeState(node_id=""),), previous=first)
        assert (first.version, second.version) == (1, 2)

    def test_diff_plans_ignores_version_only_changes(self):
        planner = Planner()
        first = planner.plan({}, {}, (NodeState(node_id=""),))
        second = planner.plan({}, {}, (NodeState(node_id=""),), previous=first)
        assert diff_plans(None, first)
        assert not diff_plans(first, second)

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="version"):
            ControlPlan(version=-1)
        node = NodePlan(
            node_id="a", max_inflight=None, pin_budget_bytes=0, processes=1
        )
        with pytest.raises(ValueError, match="duplicate"):
            ControlPlan(version=1, nodes=(node, node))

    def test_single_anonymous_node_plan_matches_any_node(self):
        node = NodePlan(
            node_id="", max_inflight=8, pin_budget_bytes=0, processes=1
        )
        plan = ControlPlan(version=1, nodes=(node,))
        assert plan.node("node-3") is node
        sharded = ControlPlan(
            version=1,
            nodes=(
                NodePlan(
                    node_id="node-0", max_inflight=8, pin_budget_bytes=0, processes=1
                ),
            ),
        )
        assert sharded.node("node-1") is None

    def test_json_round_trip_is_exact(self):
        plan = Planner().plan(
            {"vid-0": _forecast("vid-0", 10.0)},
            CATALOG,
            (NodeState(node_id="node-0", pin_budget_bytes=250, max_inflight=16),),
        )
        assert ControlPlan.from_json(plan.to_json()) == plan
        assert (
            ControlPlan.from_json(plan.to_json()).canonical() == plan.canonical()
        )


# Bounded strategies: the purity property needs variety, not magnitude.
_names = st.sampled_from(["vid-0", "vid-1", "vid-2"])
_forecasts = st.dictionaries(
    _names,
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    max_size=3,
).map(lambda d: {k: _forecast(k, v) for k, v in d.items()})
_catalogs = st.dictionaries(
    _names,
    st.lists(
        st.tuples(
            st.integers(0, 7),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.integers(1, 500),
        ),
        max_size=4,
        # Real catalogs (catalog_from_storage) never repeat a path, and a
        # duplicate would make the test's path->size accounting ambiguous.
        unique_by=lambda t: t[0],
    ),
    max_size=3,
).map(
    lambda d: {
        video: tuple(
            (f"/segment/{video}/{segment}", weight, size)
            for segment, weight, size in segments
        )
        for video, segments in d.items()
    }
)
_nodes = st.lists(
    st.tuples(
        st.sampled_from(["node-0", "node-1", "node-2"]),
        st.integers(0, 1000),
        st.one_of(st.none(), st.integers(1, 128)),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda t: t[0],
).map(
    lambda items: tuple(
        NodeState(node_id=node_id, pin_budget_bytes=budget, max_inflight=inflight)
        for node_id, budget, inflight in items
    )
)
_p99s = st.one_of(
    st.just(math.nan), st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
)


class TestPlannerPurity:
    @given(forecasts=_forecasts, catalog=_catalogs, nodes=_nodes, p99=_p99s)
    def test_same_inputs_same_plan(self, forecasts, catalog, nodes, p99):
        """plan() is a pure function: two calls with identical inputs
        produce equal plans with identical canonical bytes — the
        property the chaos replay's determinism stands on."""
        planner = Planner()
        first = planner.plan(forecasts, catalog, nodes, observed_p99=p99)
        second = planner.plan(forecasts, catalog, nodes, observed_p99=p99)
        assert first == second
        assert first.canonical() == second.canonical()

    @given(forecasts=_forecasts, catalog=_catalogs, nodes=_nodes, p99=_p99s)
    def test_plan_respects_budgets_and_floors(self, forecasts, catalog, nodes, p99):
        planner = Planner()
        plan = planner.plan(forecasts, catalog, nodes, observed_p99=p99)
        sizes = {
            path: size
            for segments in catalog.values()
            for path, _, size in segments
        }
        for state in nodes:
            node = plan.node(state.node_id)
            assert node is not None
            assert sum(sizes[p] for p, _ in node.prewarm) <= state.pin_budget_bytes
            # The floor binds when the planner *decreases* (an SLO
            # breach); held or raised positions keep their configured
            # value even below it.
            if not math.isnan(p99) and p99 > planner.slo_p99:
                assert node.max_inflight is not None
                assert node.max_inflight >= planner.min_inflight


class TestControlConfig:
    def test_bad_forecaster_parameters_fail_at_construction(self):
        with pytest.raises(ValueError, match="alpha"):
            ControlConfig(alpha=0.0)
        with pytest.raises(ValueError, match="interval"):
            ControlConfig(interval=0.0)
        with pytest.raises(ValueError, match="unknown forecaster"):
            ControlConfig(forecaster="oracle")

    def test_planner_inherits_the_knobs(self):
        config = ControlConfig(slo_p99=0.1, min_inflight=2, prewarm_threshold=3.0)
        planner = config.planner()
        assert planner.slo_p99 == 0.1
        assert planner.min_inflight == 2
        assert planner.prewarm_threshold == 3.0

    def test_cluster_config_composes_server_and_control(self):
        cluster = ClusterConfig(
            server=ServerConfig(max_inflight=8),
            control=ControlConfig(enabled=True),
        )
        assert cluster.server.max_inflight == 8
        assert cluster.control.enabled
        assert cluster.transport == "sim"


def _snapshot(counters: dict) -> dict:
    return {"counters": dict(counters), "gauges": {}, "histograms": {}, "spans": {}}


def _scripted_controller(snapshots, catalog, nodes, actuators=()):
    """A controller fed a finite script of metrics snapshots — the unit
    equivalent of the chaos harness's injected sources."""
    feed = iter(snapshots)
    return Controller(
        ControlConfig(enabled=True, deterministic=True, prewarm_threshold=1.0),
        metrics_source=lambda: next(feed),
        catalog_source=lambda: catalog,
        nodes_source=lambda: nodes,
        actuators=actuators,
        clock=iter(range(10_000)).__next__,
    )


DEMAND = "serve.video_requests{video=vid-0}"


class TestControllerStep:
    def test_first_plan_applies_then_steady_state_noops(self):
        applied = []

        class Recorder:
            def apply(self, plan):
                applied.append(plan)
                return {}

        # Constant demand: level locks to the value, trend stays zero,
        # so the second and third plans are version-only — no-ops.
        snapshots = [_snapshot({DEMAND: total}) for total in (5, 10, 15)]
        controller = _scripted_controller(
            snapshots,
            CATALOG,
            (NodeState(node_id="", pin_budget_bytes=10_000),),
            actuators=(Recorder(),),
        )
        assert controller.step() is not None
        assert controller.step() is None
        assert controller.step() is None
        assert len(applied) == 1
        assert applied[0].version == 1
        assert applied[0].node("").prewarm
        snapshot = controller.metrics.snapshot()
        assert snapshot["counters"]["control.steps"] == 3
        assert snapshot["counters"]["control.plans_applied"] == 1
        assert snapshot["counters"]["control.plans_noop"] == 2

    def test_rising_demand_reissues_the_plan(self):
        # Accelerating demand keeps the trend moving, so heats change
        # and each step issues a new version.
        snapshots = [_snapshot({DEMAND: total}) for total in (1, 3, 9)]
        controller = _scripted_controller(
            snapshots, CATALOG, (NodeState(node_id="", pin_budget_bytes=10_000),)
        )
        plans = [controller.step() for _ in range(3)]
        versions = [plan.version for plan in plans if plan is not None]
        assert versions == sorted(versions)
        assert controller.plan.version == versions[-1]

    def test_actuator_failure_is_counted_not_fatal(self):
        class Exploding:
            def apply(self, plan):
                raise StalePlanError("a newer controller is in charge")

        controller = _scripted_controller(
            [_snapshot({DEMAND: 5})],
            CATALOG,
            (NodeState(node_id="", pin_budget_bytes=10_000),),
            actuators=(Exploding(),),
        )
        plan = controller.step()
        assert plan is not None  # the loop records the plan regardless
        snapshot = controller.metrics.snapshot()
        assert snapshot["counters"]["control.actuate_errors"] == 1

    def test_identical_scripts_produce_identical_plan_bytes(self):
        """The deterministic-mode contract, end to end at unit scale."""
        script = [(2, 0), (7, 1), (20, 4), (60, 9)]

        def run():
            snapshots = [
                _snapshot(
                    {
                        DEMAND: spike,
                        "serve.video_requests{video=vid-1}": other,
                    }
                )
                for spike, other in script
            ]
            controller = _scripted_controller(
                snapshots, CATALOG, (NodeState(node_id="", pin_budget_bytes=300),)
            )
            trail = []
            for _ in script:
                plan = controller.step()
                trail.append("noop" if plan is None else plan.canonical())
            return trail

        assert run() == run()


class TestWireActuation:
    """Plans over the wire: rollback refusal, idempotence, and the
    tier-resize (a cold server enabled by its first plan)."""

    def _plan(self, version, *, prewarm=(), budget=0, inflight=None):
        return ControlPlan(
            version=version,
            nodes=(
                NodePlan(
                    node_id="",
                    max_inflight=inflight,
                    pin_budget_bytes=budget,
                    processes=1,
                    prewarm=tuple(prewarm),
                ),
            ),
        )

    def test_plan_resizes_a_cold_server_into_pinning(self, session_db):
        # pin_budget_bytes=0 at boot: the hot set is disabled until the
        # control plane grants a budget — tier resizing, not a restart.
        handle = start_server(
            session_db.storage, ServerConfig(drain_timeout=2.0), registry=MetricsRegistry()
        )
        try:
            assert not handle.server.hot.enabled
            manifest = session_db.storage.build_manifest("clip")
            paths = sorted(
                f"/segment/clip/{key.to_path()}" for key in manifest.segment_sizes
            )
            plan = self._plan(
                1,
                prewarm=[(path, 10) for path in paths],
                budget=1 << 20,
                inflight=16,
            )
            result = HandleActuator(handle).apply(plan)
            assert result["pinned"] == len(paths)
            state = handle.control_state()
            assert state["version"] == 1
            assert state["pin_budget_bytes"] == 1 << 20
            assert state["pinned_entries"] == len(paths)
            assert state["max_inflight"] == 16
        finally:
            handle.stop()

    def test_stale_plan_is_refused_locally_and_over_http(self, session_db):
        handle = start_server(
            session_db.storage, ServerConfig(drain_timeout=2.0), registry=MetricsRegistry()
        )
        try:
            actuator = HttpActuator(handle.base_url)
            actuator.apply(self._plan(3, inflight=8))
            # Equal version: idempotent re-application, not an error.
            assert actuator.apply(self._plan(3, inflight=8))["version"] == 3
            with pytest.raises(StalePlanError):
                actuator.apply(self._plan(2, inflight=8))
            with pytest.raises(StalePlanError):
                HandleActuator(handle).apply(self._plan(1, inflight=8))
            assert handle.control_state()["version"] == 3
        finally:
            handle.stop()

    def test_control_state_over_the_wire(self, session_db):
        handle = start_server(
            session_db.storage, ServerConfig(drain_timeout=2.0), registry=MetricsRegistry()
        )
        try:
            HttpActuator(handle.base_url).apply(self._plan(1, inflight=12))
            with HttpSegmentClient(handle.base_url) as client:
                state = client.fetch_control()
            assert state["version"] == 1
            assert state["max_inflight"] == 12
        finally:
            handle.stop()


class TestFlashCrowdEndToEnd:
    def test_controller_pins_the_spiking_video_before_the_peak(self, session_db):
        """The acceptance story in miniature: ramp real requests at a
        cold server and the controller must pin the spiking video's
        segments while the observed rate is still below its peak."""
        registry = MetricsRegistry()
        handle = start_server(
            session_db.storage, ServerConfig(drain_timeout=2.0), registry=registry
        )
        controller = Controller(
            ControlConfig(
                enabled=True,
                deterministic=True,
                prewarm_threshold=3.5,
                horizon=3.0,
            ),
            metrics_source=registry.snapshot,
            catalog_source=lambda: catalog_from_storage(session_db.storage),
            nodes_source=lambda: (NodeState(node_id="", pin_budget_bytes=1 << 20),),
            actuators=(HandleActuator(handle),),
            clock=iter(range(10_000)).__next__,
        )
        ramp, peak = (1, 2, 4), 8
        try:
            manifest = session_db.storage.build_manifest("clip")
            key = min(manifest.segment_sizes, key=lambda k: k.to_path())
            with HttpSegmentClient(handle.base_url) as client:
                for rate in ramp:
                    for _ in range(rate):
                        client.fetch_segment("clip", key)
                    controller.step()
                # The pins must exist NOW — before any peak-rate request
                # has been issued. Predicted demand (level + trend
                # lookahead) crossed the threshold while observed demand
                # was still at ramp levels below the peak.
                assert max(ramp) < peak
                pinned = handle.server.hot.paths()
                assert pinned, "controller never pinned during the ramp"
                assert all(path.startswith("/segment/clip/") for path in pinned)
                assert controller.plan is not None
                # The peak itself is then served from RAM.
                hits_before = registry.counter("serve.pin_hits").total()
                for _ in range(peak):
                    client.fetch_segment("clip", key)
                assert registry.counter("serve.pin_hits").total() >= hits_before + peak
        finally:
            handle.stop()
