"""Unit tests for the streamer's timing primitives.

The integration tests exercise whole sessions; these pin down the small
functions whose edge cases integration noise would mask.
"""

import pytest

from repro.core.streamer import Streamer
from repro.geometry.viewport import Orientation
from repro.predict.predictors import StaticPredictor
from repro.predict.traces import circular_pan_trace


class TestMediaTime:
    def test_before_playback_starts(self):
        assert Streamer._media_time([], 1.0, 5.0) == 0.0

    def test_wall_before_first_start(self):
        assert Streamer._media_time([2.0], 1.0, 1.0) == 0.0

    def test_mid_first_window(self):
        assert Streamer._media_time([2.0], 1.0, 2.4) == pytest.approx(0.4)

    def test_media_time_freezes_during_stall(self):
        # Window 0 plays at [2, 3); window 1 stalled until 5.
        starts = [2.0, 5.0]
        assert Streamer._media_time(starts, 1.0, 3.5) == pytest.approx(1.0)
        assert Streamer._media_time(starts, 1.0, 5.2) == pytest.approx(1.2)

    def test_continuous_playback(self):
        starts = [0.0, 1.0, 2.0]
        assert Streamer._media_time(starts, 1.0, 2.75) == pytest.approx(2.75)

    def test_past_the_end_clamps_to_last_window(self):
        starts = [0.0, 1.0]
        assert Streamer._media_time(starts, 1.0, 99.0) == pytest.approx(2.0)


class TestObserve:
    def test_feeds_samples_up_to_deadline(self):
        trace = circular_pan_trace(4.0, rate=2.0)
        predictor = StaticPredictor(history_window=100.0)
        cursor = Streamer._observe(predictor, trace, 0, up_to=1.0)
        # Samples at 0.0, 0.5, 1.0 are at or before the deadline.
        assert cursor == 3
        assert len(predictor._history) == 3

    def test_always_feeds_at_least_one(self):
        trace = circular_pan_trace(4.0, rate=2.0)
        predictor = StaticPredictor()
        cursor = Streamer._observe(predictor, trace, 0, up_to=-5.0)
        assert cursor == 1
        predictor.predict(0.0)  # does not raise: one observation exists

    def test_cursor_resumes_without_duplicates(self):
        trace = circular_pan_trace(4.0, rate=2.0)
        predictor = StaticPredictor(history_window=100.0)
        cursor = Streamer._observe(predictor, trace, 0, up_to=1.0)
        cursor = Streamer._observe(predictor, trace, cursor, up_to=2.0)
        assert cursor == 5
        times = [entry[0] for entry in predictor._history]
        assert times == sorted(set(times))

    def test_no_new_samples_is_a_noop(self):
        trace = circular_pan_trace(4.0, rate=2.0)
        predictor = StaticPredictor()
        cursor = Streamer._observe(predictor, trace, 0, up_to=1.0)
        assert Streamer._observe(predictor, trace, cursor, up_to=1.0) == cursor
