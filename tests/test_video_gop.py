"""Unit tests for GOP encoding and the indexed GOP stream."""

import numpy as np
import pytest

from repro.video.frame import Frame, psnr
from repro.video.gop import (
    GopCodec,
    GopStream,
    decode_any_gop,
    gop_byte_length,
)
from repro.video.quality import Quality
from repro.workloads.videos import checkerboard_video, solid_video


@pytest.fixture(scope="module")
def frames() -> list[Frame]:
    return checkerboard_video(width=32, height=32, frames=5)


class TestGopCodec:
    def test_round_trip_frame_count(self, frames):
        codec = GopCodec(Quality.HIGH)
        decoded = codec.decode_gop(codec.encode_gop(frames))
        assert len(decoded) == len(frames)

    def test_round_trip_fidelity(self, frames):
        codec = GopCodec(Quality.HIGH)
        decoded = codec.decode_gop(codec.encode_gop(frames))
        for original, restored in zip(frames, decoded):
            assert psnr(original, restored) > 30

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GopCodec(Quality.HIGH).encode_gop([])

    def test_rejects_mixed_dimensions(self, frames):
        bad = frames[:2] + [Frame.blank(64, 32)]
        with pytest.raises(ValueError):
            GopCodec(Quality.HIGH).encode_gop(bad)

    def test_quality_mismatch_on_decode(self, frames):
        data = GopCodec(Quality.HIGH).encode_gop(frames)
        with pytest.raises(ValueError):
            GopCodec(Quality.LOW).decode_gop(data)

    def test_decode_any_reads_quality_from_header(self, frames):
        data = GopCodec(Quality.MEDIUM).encode_gop(frames)
        assert len(decode_any_gop(data)) == len(frames)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            decode_any_gop(b"XXXX" + b"\x00" * 16)

    def test_truncated_header(self):
        with pytest.raises(ValueError):
            decode_any_gop(b"VG")

    def test_static_content_predicted_frames_cheap(self):
        static = solid_video(32, 32, frames=6, luma=90)
        data = GopCodec(Quality.HIGH).encode_gop(static)
        one = GopCodec(Quality.HIGH).encode_gop(static[:1])
        # Five extra all-skip frames cost almost nothing next to the intra.
        assert len(data) < len(one) + 5 * 40

    def test_gop_byte_length_parses_without_decode(self, frames):
        data = GopCodec(Quality.LOW).encode_gop(frames)
        assert gop_byte_length(data) == len(data)

    def test_gop_byte_length_with_offset(self, frames):
        gop = GopCodec(Quality.LOW).encode_gop(frames)
        data = b"\x00" * 7 + gop
        assert gop_byte_length(data, offset=7) == len(gop)


class TestGopStream:
    def make_stream(self, gop_count=4, frames_per_gop=3) -> GopStream:
        stream = GopStream()
        codec = GopCodec(Quality.LOW)
        clips = checkerboard_video(width=32, height=32, frames=gop_count * frames_per_gop)
        for index in range(gop_count):
            batch = clips[index * frames_per_gop : (index + 1) * frames_per_gop]
            stream.append(codec.encode_gop(batch), start_time=float(index), duration=1.0)
        return stream

    def test_duration(self):
        assert self.make_stream(4).duration == pytest.approx(4.0)

    def test_append_must_be_contiguous(self):
        stream = self.make_stream(2)
        with pytest.raises(ValueError):
            stream.append(b"VGOP", start_time=5.0, duration=1.0)

    def test_append_rejects_non_positive_duration(self):
        stream = GopStream()
        with pytest.raises(ValueError):
            stream.append(b"x", start_time=0.0, duration=0.0)

    def test_indexed_select_returns_covering_gops(self):
        stream = self.make_stream(4)
        selected = stream.select_indexed(1.5, 2.5)
        assert len(selected) == 2
        for gop in selected:
            assert len(decode_any_gop(gop)) == 3

    def test_indexed_select_boundary_exclusive(self):
        stream = self.make_stream(4)
        assert len(stream.select_indexed(1.0, 2.0)) == 1

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            self.make_stream(2).select_indexed(1.0, 1.0)

    def test_scan_matches_indexed(self):
        stream = self.make_stream(5)
        assert stream.select_scan(2.0, 4.0) == stream.select_indexed(2.0, 4.0)

    def test_scan_from_start(self):
        stream = self.make_stream(3)
        assert stream.select_scan(0.0, 1.0) == stream.select_indexed(0.0, 1.0)

    def test_select_decode_returns_frames(self):
        stream = self.make_stream(4, frames_per_gop=2)
        frames = stream.select_decode(3.0, 4.0)
        assert len(frames) == 2

    def test_union_splices_bytes(self):
        a = self.make_stream(2)
        b = self.make_stream(3)
        union = GopStream.union([a, b])
        assert union.gop_count == 5
        assert union.duration == pytest.approx(5.0)
        assert union.data == a.data + b.data
        # The spliced stream is still fully decodable via its index.
        last = union.select_indexed(4.0, 5.0)
        assert len(last) == 1
        assert len(decode_any_gop(last[0])) == 3

    def test_union_requires_zero_based_streams(self):
        stream = GopStream()
        stream.index.append((1.0, 1.0, 0, 4))  # doctored non-zero start
        stream.data = b"xxxx"
        with pytest.raises(ValueError):
            GopStream.union([self.make_stream(1), stream])

    def test_union_of_none(self):
        with pytest.raises(ValueError):
            GopStream.union([])


class TestMergeGops:
    def make_parts(self, count=3, frames_each=2, quality=Quality.LOW):
        codec = GopCodec(quality)
        clips = checkerboard_video(width=32, height=32, frames=count * frames_each)
        return [
            codec.encode_gop(clips[i * frames_each : (i + 1) * frames_each])
            for i in range(count)
        ], clips

    def test_merge_decodes_to_concatenation(self):
        from repro.video.gop import merge_gops

        parts, clips = self.make_parts()
        merged = merge_gops(parts)
        decoded = decode_any_gop(merged)
        assert len(decoded) == 6
        separate = [frame for part in parts for frame in decode_any_gop(part)]
        assert all(a.equals(b) for a, b in zip(decoded, separate))

    def test_merge_is_pure_byte_concat_after_header(self):
        from repro.video.gop import _HEADER, merge_gops

        parts, _ = self.make_parts(count=2)
        merged = merge_gops(parts)
        assert merged[_HEADER.size:] == parts[0][_HEADER.size:] + parts[1][_HEADER.size:]

    def test_merge_single_is_identity(self):
        from repro.video.gop import merge_gops

        parts, _ = self.make_parts(count=1)
        assert merge_gops(parts) == parts[0]

    def test_merge_rejects_empty(self):
        from repro.video.gop import merge_gops

        with pytest.raises(ValueError):
            merge_gops([])

    def test_merge_rejects_quality_mismatch(self):
        from repro.video.gop import merge_gops

        high, _ = self.make_parts(count=1, quality=Quality.HIGH)
        low, _ = self.make_parts(count=1, quality=Quality.LOW)
        with pytest.raises(ValueError):
            merge_gops([high[0], low[0]])

    def test_merge_rejects_dimension_mismatch(self):
        from repro.video.gop import merge_gops

        a = GopCodec(Quality.LOW).encode_gop(solid_video(32, 32, 2))
        b = GopCodec(Quality.LOW).encode_gop(solid_video(64, 32, 2))
        with pytest.raises(ValueError):
            merge_gops([a, b])
