"""Unit tests for unit-sphere math."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI, AngularRect
from repro.geometry.sphere import (
    from_unit_vector,
    great_circle_distance,
    solid_angle,
    to_unit_vector,
)


class TestUnitVectors:
    def test_north_pole(self):
        assert np.allclose(to_unit_vector(0.0, 0.0), [0.0, 0.0, 1.0])

    def test_south_pole(self):
        assert np.allclose(to_unit_vector(1.23, math.pi), [0.0, 0.0, -1.0], atol=1e-12)

    def test_equator_theta_zero(self):
        assert np.allclose(to_unit_vector(0.0, math.pi / 2), [1.0, 0.0, 0.0])

    def test_equator_theta_half_pi(self):
        assert np.allclose(to_unit_vector(math.pi / 2, math.pi / 2), [0.0, 1.0, 0.0])

    def test_vectors_are_unit_length(self):
        thetas = np.linspace(0, TWO_PI, 13)
        phis = np.linspace(0, math.pi, 7)
        grid_t, grid_p = np.meshgrid(thetas, phis)
        vectors = to_unit_vector(grid_t, grid_p)
        assert np.allclose(np.linalg.norm(vectors, axis=-1), 1.0)

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        theta = rng.uniform(0, TWO_PI, 50)
        phi = rng.uniform(0.01, math.pi - 0.01, 50)
        theta_back, phi_back = from_unit_vector(to_unit_vector(theta, phi))
        assert np.allclose(theta_back, theta)
        assert np.allclose(phi_back, phi)

    def test_from_unit_vector_unnormalised_input(self):
        theta, phi = from_unit_vector(np.array([0.0, 0.0, 3.0]))
        assert phi == pytest.approx(0.0)

    def test_from_zero_vector_is_safe(self):
        theta, phi = from_unit_vector(np.zeros(3))
        assert 0 <= phi <= math.pi


class TestGreatCircleDistance:
    def test_zero_for_same_point(self):
        assert great_circle_distance(1.0, 1.0, 1.0, 1.0) == pytest.approx(0.0)

    def test_antipodal_is_pi(self):
        assert great_circle_distance(0.0, math.pi / 2, math.pi, math.pi / 2) == pytest.approx(
            math.pi
        )

    def test_quarter_turn_on_equator(self):
        assert great_circle_distance(
            0.0, math.pi / 2, math.pi / 2, math.pi / 2
        ) == pytest.approx(math.pi / 2)

    def test_pole_to_equator(self):
        assert great_circle_distance(0.3, 0.0, 1.7, math.pi / 2) == pytest.approx(
            math.pi / 2
        )

    def test_wrap_through_seam(self):
        near_seam_a = great_circle_distance(0.05, math.pi / 2, TWO_PI - 0.05, math.pi / 2)
        assert near_seam_a == pytest.approx(0.1, abs=1e-9)

    def test_symmetry(self):
        d1 = great_circle_distance(0.3, 1.0, 2.0, 2.0)
        d2 = great_circle_distance(2.0, 2.0, 0.3, 1.0)
        assert d1 == pytest.approx(d2)

    def test_array_broadcast(self):
        thetas = np.array([0.0, 1.0, 2.0])
        result = great_circle_distance(thetas, math.pi / 2, 0.0, math.pi / 2)
        assert result.shape == (3,)
        assert result[0] == pytest.approx(0.0)


class TestSolidAngle:
    def test_full_sphere(self):
        rect = AngularRect(0.0, TWO_PI, 0.0, math.pi)
        assert solid_angle(rect) == pytest.approx(4 * math.pi)

    def test_hemisphere(self):
        rect = AngularRect(0.0, TWO_PI, 0.0, math.pi / 2)
        assert solid_angle(rect) == pytest.approx(2 * math.pi)

    def test_equatorial_beats_polar_tile(self):
        equatorial = AngularRect(0.0, 1.0, math.pi / 2 - 0.2, math.pi / 2 + 0.2)
        polar = AngularRect(0.0, 1.0, 0.0, 0.4)
        assert solid_angle(equatorial) > solid_angle(polar)

    def test_grid_tiles_sum_to_sphere(self):
        from repro.geometry.grid import TileGrid

        grid = TileGrid(3, 5)
        total = sum(solid_angle(grid.rect(r, c)) for r, c in grid.tiles())
        assert total == pytest.approx(4 * math.pi)
