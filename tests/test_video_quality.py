"""Unit tests for the quality ladder."""

import pytest

from repro.video.quality import QUALITY_LADDER, Quality


class TestOrdering:
    def test_high_is_best(self):
        assert Quality.HIGH > Quality.MEDIUM > Quality.LOW > Quality.LOWEST

    def test_le_ge(self):
        assert Quality.LOW <= Quality.LOW
        assert Quality.LOW <= Quality.MEDIUM
        assert Quality.HIGH >= Quality.HIGH

    def test_sorted_best_first(self):
        shuffled = [
            Quality.LOW,
            Quality.HIGH,
            Quality.THUMBNAIL,
            Quality.LOWEST,
            Quality.MEDIUM,
        ]
        assert sorted(shuffled, reverse=True) == list(QUALITY_LADDER)

    def test_comparison_with_other_types(self):
        with pytest.raises(TypeError):
            _ = Quality.HIGH < 3

    def test_effective_coarseness_monotone_in_rank(self):
        # A downscaled rung's effective quantisation coarseness is its
        # quantiser scale times the pixel-area reduction.
        coarseness = [
            quality.scale * quality.downscale**2 for quality in QUALITY_LADDER
        ]
        assert coarseness == sorted(coarseness)


class TestRank:
    def test_rank_values(self):
        assert Quality.HIGH.rank == 0
        assert Quality.THUMBNAIL.rank == len(QUALITY_LADDER) - 1

    def test_downscale_factors(self):
        assert Quality.HIGH.downscale == 1
        assert Quality.THUMBNAIL.downscale == 2


class TestLabels:
    def test_from_label_round_trip(self):
        for quality in Quality:
            assert Quality.from_label(quality.label) is quality

    def test_from_label_unknown(self):
        with pytest.raises(ValueError):
            Quality.from_label("ultra")


class TestLadder:
    def test_full_ladder(self):
        assert Quality.ladder(len(QUALITY_LADDER)) == tuple(Quality)

    def test_partial_ladder_keeps_best(self):
        assert Quality.ladder(2) == (Quality.HIGH, Quality.MEDIUM)

    def test_ladder_size_bounds(self):
        with pytest.raises(ValueError):
            Quality.ladder(0)
        with pytest.raises(ValueError):
            Quality.ladder(len(QUALITY_LADDER) + 1)
