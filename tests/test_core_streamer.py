"""Integration tests for the delivery engine."""

import math

import pytest

from repro.core.storage import IngestConfig, StorageManager
from repro.core.predictor import PredictionService
from repro.core.streamer import SessionConfig, Streamer
from repro.geometry.grid import TileGrid
from repro.predict.traces import HeadMovementModel, circular_pan_trace
from repro.stream.abr import NaiveFullQuality, PredictiveTilingPolicy, UniformAdaptive
from repro.stream.network import ConstantBandwidth, SteppedBandwidth
from repro.video.quality import Quality
from repro.workloads.videos import synthetic_video


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    storage = StorageManager(tmp_path_factory.mktemp("store"))
    config = IngestConfig(
        grid=TileGrid(2, 4),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=128, height=64, fps=4.0, duration=5.0, seed=3)
    storage.ingest("clip", frames, config)
    return Streamer(storage, PredictionService())


@pytest.fixture(scope="module")
def trace():
    return HeadMovementModel().generate(5.0, rate=10.0, seed=8)


def session(policy, bandwidth=50_000.0, **kwargs) -> SessionConfig:
    return SessionConfig(
        policy=policy, bandwidth=ConstantBandwidth(bandwidth), **kwargs
    )


class TestBasicSessions:
    def test_naive_serves_every_window(self, served, trace):
        report = served.serve("clip", trace, session(NaiveFullQuality()))
        assert len(report.records) == 5
        assert report.total_bytes > 0

    def test_predictive_saves_bytes(self, served, trace):
        naive = served.serve("clip", trace, session(NaiveFullQuality()))
        predictive = served.serve(
            "clip", trace, session(PredictiveTilingPolicy(), margin=0)
        )
        assert predictive.bytes_saved_vs(naive) > 0.2

    def test_oracle_saves_at_least_as_much_as_static(self, served, trace):
        def run(kind):
            return served.serve(
                "clip",
                trace,
                session(PredictiveTilingPolicy(), predictor=kind, margin=0),
            ).total_bytes

        assert run("oracle") <= run("static") * 1.1

    def test_bytes_match_manifest_sizes(self, served, trace):
        report = served.serve("clip", trace, session(NaiveFullQuality()))
        manifest = served.storage.build_manifest("clip")
        for record in report.records:
            assert record.bytes_sent == manifest.window_size(
                record.window, record.quality_map
            )

    def test_every_tile_assigned_every_window(self, served, trace):
        report = served.serve("clip", trace, session(PredictiveTilingPolicy()))
        for record in report.records:
            assert set(record.quality_map) == set(TileGrid(2, 4).tiles())


class TestStalls:
    @pytest.fixture()
    def naive_rate(self, served) -> float:
        """Bytes/second needed to stream the full sphere at top quality."""
        manifest = served.storage.build_manifest("clip")
        total = sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        )
        return total / manifest.duration

    def test_generous_bandwidth_never_stalls(self, served, trace):
        report = served.serve("clip", trace, session(NaiveFullQuality(), bandwidth=1e9))
        assert report.stall_time == 0.0

    def test_starved_naive_stalls(self, served, trace, naive_rate):
        report = served.serve(
            "clip", trace, session(NaiveFullQuality(), bandwidth=naive_rate * 0.5)
        )
        assert report.stall_time > 0.0

    def test_predictive_stalls_less_than_naive_when_starved(
        self, served, trace, naive_rate
    ):
        bandwidth = naive_rate * 0.7
        naive = served.serve("clip", trace, session(NaiveFullQuality(), bandwidth=bandwidth))
        adaptive = served.serve(
            "clip", trace, session(PredictiveTilingPolicy(), bandwidth=bandwidth, margin=0)
        )
        assert adaptive.stall_time < naive.stall_time

    def test_uniform_adapts_to_bandwidth_step(self, served, trace, naive_rate):
        stepped = SteppedBandwidth(
            steps=((0.0, naive_rate * 10.0), (2.0, naive_rate * 0.5))
        )
        config = SessionConfig(policy=UniformAdaptive(), bandwidth=stepped)
        report = served.serve("clip", trace, config)
        early_best = report.records[0].quality_map[(0, 0)]
        late_best = report.records[-1].quality_map[(0, 0)]
        assert early_best > late_best


class TestQualityProbe:
    def test_probe_fills_viewport_psnr(self, served, trace):
        config = session(PredictiveTilingPolicy(), evaluate_quality=True, margin=0)
        report = served.serve("clip", trace, config)
        assert not math.isnan(report.mean_viewport_psnr)

    def test_naive_probe_hits_ceiling(self, served, trace):
        config = session(NaiveFullQuality(), evaluate_quality=True)
        report = served.serve("clip", trace, config)
        assert report.mean_viewport_psnr == pytest.approx(99.0)

    def test_predictive_viewport_quality_stays_high(self, served, trace):
        """The headline QoE claim: quality in the viewport barely drops."""
        config = session(PredictiveTilingPolicy(), evaluate_quality=True, margin=1)
        report = served.serve("clip", trace, config)
        assert report.mean_viewport_psnr > 30


class TestPredictorsInLoop:
    @pytest.mark.parametrize("kind", ["static", "deadreckoning", "linear", "oracle"])
    def test_all_predictor_kinds_serve(self, served, trace, kind):
        config = session(PredictiveTilingPolicy(), predictor=kind)
        report = served.serve("clip", trace, config)
        assert len(report.records) == 5

    def test_markov_predictor_serves_after_training(self, served, trace):
        corpus = HeadMovementModel().generate_corpus(3, 5.0, rate=10.0, seed=1)
        served.prediction.train("clip", TileGrid(2, 4), corpus)
        config = session(PredictiveTilingPolicy(), predictor="markov")
        report = served.serve("clip", trace, config)
        assert len(report.records) == 5

    def test_oracle_has_perfect_recall(self, served, trace):
        config = session(PredictiveTilingPolicy(), predictor="oracle", margin=0)
        report = served.serve("clip", trace, config)
        for record in report.records:
            assert record.visible_tiles <= record.predicted_tiles


class TestBufferCoupling:
    def test_deeper_buffer_worse_prediction(self, served):
        """With a hard-to-predict trace, deeper buffers (longer horizons)
        should not improve prediction recall."""
        trace = HeadMovementModel(fixation_duration_mean=0.8).generate(
            5.0, rate=10.0, seed=12
        )

        def recall(buffer_windows):
            config = session(
                PredictiveTilingPolicy(),
                margin=0,
                buffer_windows=buffer_windows,
            )
            report = served.serve("clip", trace, config)
            hits = sum(
                len(r.visible_tiles & r.predicted_tiles) for r in report.records[2:]
            )
            total = sum(len(r.visible_tiles) for r in report.records[2:])
            return hits / total

        assert recall(4.0) <= recall(1.0) + 0.05
