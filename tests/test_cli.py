"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def run(tmp_path, *argv) -> int:
    return main(["--root", str(tmp_path / "db"), *argv])


def ingest_small(tmp_path, name="demo") -> None:
    code = run(
        tmp_path,
        "ingest",
        name,
        "--width",
        "64",
        "--height",
        "32",
        "--duration",
        "2",
        "--fps",
        "4",
        "--grid",
        "2x2",
        "--gop-frames",
        "4",
    )
    assert code == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_grid_argument(self):
        args = build_parser().parse_args(["ingest", "x", "--grid", "2x4"])
        assert (args.grid.rows, args.grid.cols) == (2, 4)

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "x", "--grid", "banana"])

    def test_qualities_argument(self):
        from repro.video.quality import Quality

        args = build_parser().parse_args(["ingest", "x", "--qualities", "high,low"])
        assert args.qualities == (Quality.HIGH, Quality.LOW)

    def test_bad_quality_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "x", "--qualities", "ultra"])

    def test_time_range_argument(self):
        args = build_parser().parse_args(["query", "x", "--select-time", "1:2.5"])
        assert args.select_time == (1.0, 2.5)


class TestCommands:
    def test_ls_empty(self, tmp_path, capsys):
        assert run(tmp_path, "ls") == 0
        assert "(no videos)" in capsys.readouterr().out

    def test_ingest_then_ls(self, tmp_path, capsys):
        ingest_small(tmp_path)
        assert run(tmp_path, "ls") == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "2.0s" in out

    def test_info(self, tmp_path, capsys):
        ingest_small(tmp_path)
        assert run(tmp_path, "info", "demo") == 0
        out = capsys.readouterr().out
        assert "64x32" in out
        assert "2x2 tiles" in out

    def test_serve(self, tmp_path, capsys):
        ingest_small(tmp_path)
        assert run(tmp_path, "serve", "demo", "--bandwidth", "20000") == 0
        out = capsys.readouterr().out
        assert "total_bytes" in out
        assert "stall_time_s" in out

    def test_query_store(self, tmp_path, capsys):
        ingest_small(tmp_path)
        assert (
            run(tmp_path, "query", "demo", "--select-time", "0:1", "--grayscale",
                "--store", "gray")
            == 0
        )
        out = capsys.readouterr().out
        assert "stored as 'gray'" in out
        run(tmp_path, "ls")
        assert "gray" in capsys.readouterr().out

    def test_vrql_command(self, tmp_path, capsys):
        ingest_small(tmp_path)
        code = run(
            tmp_path, "vrql", "SCAN(demo) >> SELECT(time=0:1) >> STORE(head)"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "homomorphic-gop" in out
        run(tmp_path, "ls")
        assert "head" in capsys.readouterr().out

    def test_vrql_error_reported(self, tmp_path, capsys):
        ingest_small(tmp_path)
        assert run(tmp_path, "vrql", "SELECT(time=0:1)") == 1
        assert "error:" in capsys.readouterr().err

    def test_export_import_cycle(self, tmp_path, capsys):
        ingest_small(tmp_path)
        target = tmp_path / "out.mp4"
        assert run(tmp_path, "export", "demo", str(target)) == 0
        assert target.exists()
        assert run(tmp_path, "import", "copy", str(target)) == 0
        run(tmp_path, "ls")
        assert "copy" in capsys.readouterr().out

    def test_drop(self, tmp_path, capsys):
        ingest_small(tmp_path)
        assert run(tmp_path, "drop", "demo") == 0
        run(tmp_path, "ls")
        assert "(no videos)" in capsys.readouterr().out

    def test_errors_exit_nonzero(self, tmp_path, capsys):
        assert run(tmp_path, "drop", "ghost") == 1
        assert "error:" in capsys.readouterr().err

    def test_metrics_json_after_multisession_run(self, tmp_path, capsys):
        import json

        ingest_small(tmp_path)
        capsys.readouterr()  # drop the ingest chatter
        assert (
            run(tmp_path, "metrics", "demo", "--sessions", "3", "--bandwidth", "50000")
            == 0
        )
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) >= {"counters", "gauges", "histograms", "spans"}
        counters = snapshot["counters"]
        assert counters["storage.segments_read"] > 0
        assert counters["cache.hits"] > 0  # 3 viewers, one clip: reads amortise
        assert any(key.startswith("stream.windows") for key in counters)
        assert any(key.startswith("stream.bytes_sent") for key in counters)
        assert snapshot["histograms"]["storage.read_segment.seconds"]["count"] > 0

    def test_metrics_prometheus_format(self, tmp_path, capsys):
        ingest_small(tmp_path)
        capsys.readouterr()
        assert (
            run(
                tmp_path, "metrics", "demo", "--sessions", "2", "--bandwidth",
                "50000", "--format", "prom",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE cache_hits counter" in out
        assert "# TYPE storage_read_segment_seconds summary" in out
        assert 'quantile="0.5"' in out
        assert "storage_read_segment_seconds_count" in out
        assert any(line.startswith("stream_windows") for line in out.splitlines())

    def test_metrics_output_file(self, tmp_path, capsys):
        import json

        ingest_small(tmp_path)
        target = tmp_path / "metrics.json"
        assert (
            run(
                tmp_path, "metrics", "demo", "--sessions", "2", "--bandwidth",
                "50000", "--output", str(target),
            )
            == 0
        )
        assert "wrote metrics" in capsys.readouterr().out
        snapshot = json.loads(target.read_text())
        assert snapshot["counters"]["storage.segments_read"] > 0

    def test_metrics_without_run_exports_empty_registry(self, tmp_path, capsys):
        import json

        ingest_small(tmp_path)
        capsys.readouterr()
        assert run(tmp_path, "metrics") == 0  # no name: export what accrued
        snapshot = json.loads(capsys.readouterr().out)
        # Ingest happened in a separate process; this one only opened the
        # catalog, so streaming counters are absent but the shape holds.
        assert set(snapshot) >= {"counters", "gauges", "histograms", "spans"}

    def test_duplicate_ingest_fails_cleanly(self, tmp_path, capsys):
        ingest_small(tmp_path)
        code = run(
            tmp_path, "ingest", "demo", "--width", "64", "--height", "32",
            "--duration", "1", "--fps", "4", "--grid", "2x2", "--gop-frames", "4",
        )
        assert code == 1
