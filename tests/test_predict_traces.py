"""Unit tests for orientation traces and the head-movement model."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.predict.traces import (
    HeadMovementModel,
    Hotspot,
    Trace,
    circular_pan_trace,
    raster_scan_trace,
)


class TestTraceValidation:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            Trace(np.array([0.0, 1.0]), np.array([0.0]), np.array([0.0, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Trace(np.array([]), np.array([]), np.array([]))

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            Trace(np.array([0.0, 0.0]), np.zeros(2), np.ones(2))

    def test_len_and_duration(self):
        trace = Trace(np.array([0.0, 1.0, 2.5]), np.zeros(3), np.full(3, 1.0))
        assert len(trace) == 3
        assert trace.duration == 2.5


class TestOrientationAt:
    def make(self) -> Trace:
        return Trace(
            np.array([0.0, 1.0, 2.0]),
            np.array([0.0, 1.0, 2.0]),
            np.array([1.0, 1.2, 1.4]),
        )

    def test_exact_sample(self):
        orientation = self.make().orientation_at(1.0)
        assert orientation.theta == pytest.approx(1.0)
        assert orientation.phi == pytest.approx(1.2)

    def test_interpolates(self):
        orientation = self.make().orientation_at(0.5)
        assert orientation.theta == pytest.approx(0.5)
        assert orientation.phi == pytest.approx(1.1)

    def test_clamps_before_start(self):
        assert self.make().orientation_at(-5.0).theta == pytest.approx(0.0)

    def test_clamps_after_end(self):
        assert self.make().orientation_at(99.0).theta == pytest.approx(2.0)

    def test_interpolation_wraps_through_seam(self):
        trace = Trace(
            np.array([0.0, 1.0]),
            np.array([TWO_PI - 0.1, 0.1]),  # crosses the seam
            np.array([1.0, 1.0]),
        )
        midpoint = trace.orientation_at(0.5)
        assert min(midpoint.theta, TWO_PI - midpoint.theta) == pytest.approx(0.0, abs=1e-9)


class TestWindowResample:
    def test_window(self):
        trace = circular_pan_trace(10.0, rate=10.0)
        sub = trace.window(2.0, 4.0)
        assert sub.times[0] >= 2.0
        assert sub.times[-1] <= 4.0

    def test_window_empty_raises(self):
        trace = circular_pan_trace(1.0, rate=10.0)
        with pytest.raises(ValueError):
            trace.window(5.0, 6.0)

    def test_resample_rate(self):
        trace = circular_pan_trace(10.0, rate=30.0)
        resampled = trace.resample(5.0)
        assert len(resampled) == 51
        assert np.allclose(np.diff(resampled.times), 0.2)

    def test_resample_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            circular_pan_trace(1.0).resample(0.0)


class TestHeadMovementModel:
    def test_deterministic_per_seed(self):
        model = HeadMovementModel()
        a = model.generate(5.0, rate=10.0, seed=7)
        b = model.generate(5.0, rate=10.0, seed=7)
        assert np.array_equal(a.thetas, b.thetas)

    def test_different_seeds_differ(self):
        model = HeadMovementModel()
        a = model.generate(5.0, rate=10.0, seed=1)
        b = model.generate(5.0, rate=10.0, seed=2)
        assert not np.array_equal(a.thetas, b.thetas)

    def test_sample_count(self):
        trace = HeadMovementModel().generate(4.0, rate=25.0, seed=0)
        assert len(trace) == 101

    def test_angles_in_domain(self):
        trace = HeadMovementModel().generate(20.0, rate=30.0, seed=3)
        assert np.all((trace.thetas >= 0) & (trace.thetas < TWO_PI))
        assert np.all((trace.phis >= 0) & (trace.phis <= math.pi))

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            HeadMovementModel().generate(0.0)

    def test_movement_is_speed_limited(self):
        model = HeadMovementModel()
        trace = model.generate(10.0, rate=30.0, seed=5)
        dt = 1.0 / 30.0
        from repro.geometry.sphere import great_circle_distance

        step = great_circle_distance(
            trace.thetas[1:], trace.phis[1:], trace.thetas[:-1], trace.phis[:-1]
        )
        # Bounded by saccade speed in each axis plus jitter.
        assert np.max(step) < 2 * model.saccade_speed * dt + 0.05

    def test_gaze_concentrates_near_hotspots(self):
        hotspot = Hotspot(theta=1.0, phi=math.pi / 2, spread=0.05, weight=1.0)
        model = HeadMovementModel(hotspots=(hotspot,), jitter=0.005)
        trace = model.generate(30.0, rate=10.0, seed=2)
        from repro.geometry.sphere import great_circle_distance

        distances = great_circle_distance(trace.thetas, trace.phis, 1.0, math.pi / 2)
        assert np.median(distances) < 0.4

    def test_corpus_is_per_user_deterministic(self):
        model = HeadMovementModel()
        corpus_a = model.generate_corpus(3, 2.0, rate=10.0, seed=1)
        corpus_b = model.generate_corpus(3, 2.0, rate=10.0, seed=1)
        assert all(
            np.array_equal(a.thetas, b.thetas) for a, b in zip(corpus_a, corpus_b)
        )


class TestScriptedTraces:
    def test_raster_scan_visits_tiles_in_order(self):
        trace = raster_scan_trace(4.0, rate=10.0, dwell=1.0, grid_rows=2, grid_cols=2)
        from repro.geometry.grid import TileGrid

        grid = TileGrid(2, 2)
        first = grid.tile_of(trace.thetas[0], trace.phis[0])
        second = grid.tile_of(trace.thetas[15], trace.phis[15])
        assert first == (0, 0)
        assert second == (0, 1)

    def test_raster_scan_wraps_modulo_cells(self):
        trace = raster_scan_trace(10.0, rate=4.0, dwell=1.0, grid_rows=2, grid_cols=2)
        from repro.geometry.grid import TileGrid

        grid = TileGrid(2, 2)
        assert grid.tile_of(trace.thetas[-2], trace.phis[-2]) in set(grid.tiles())

    def test_circular_pan_period(self):
        trace = circular_pan_trace(10.0, rate=100.0, period=10.0)
        assert trace.thetas[0] == pytest.approx(trace.thetas[-1] % TWO_PI, abs=0.1)

    def test_circular_pan_stays_equatorial(self):
        trace = circular_pan_trace(5.0)
        assert np.allclose(trace.phis, math.pi / 2)
