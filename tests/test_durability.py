"""Durability and self-healing: crash-consistent commits, end-to-end
checksums, peer read-repair.

Four contracts pinned here:

* **Checksum soundness** — ``segment_checksum`` detects every labelled
  corruption in the chaos corpus and never flags intact bytes.
* **Crash consistency** — a process SIGKILLed at *any* seeded write
  point mid-ingest leaves either no visible version (crash before the
  metadata publish) or a complete, adoptable one (crash between metadata
  and marker); ``fsck --repair`` restores a clean catalog either way,
  and re-ingest then succeeds.
* **Drop coherence** — dropping a video also drops its pinned wire
  buffers on an attached server, so a dropped-then-recreated video never
  serves stale bytes.
* **Read-repair** — with rf>=2, a segment corrupt on one node's disk is
  served byte-identical via checksum-triggered peer fetch, and the local
  file is atomically rewritten to the ingest bytes.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.corrupt import segment_corruption_corpus
from repro.core.errors import CatalogError, SegmentCorruptError
from repro.core.storage import StorageManager, checksum_hex, segment_checksum
from repro.obs import MetricsRegistry
from repro.serve.client import HttpSegmentClient
from repro.serve.placement import ShardMap, materialize_shards
from repro.serve.server import ServerConfig, start_server

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestChecksumSoundness:
    @settings(max_examples=60, deadline=None)
    @given(data=st.binary(min_size=1, max_size=512), seed=st.integers(0, 2**16))
    def test_every_labelled_corruption_is_detected(self, data, seed):
        reference = segment_checksum(data)
        for label, payload in segment_corruption_corpus(data, seed=seed):
            if payload == data:
                continue  # truncation at the full length is a no-op
            assert segment_checksum(payload) != reference, label

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=512))
    def test_intact_bytes_always_verify(self, data):
        assert segment_checksum(data) == segment_checksum(bytes(data))
        assert segment_checksum(data) != 0  # 0 stays the "unknown" sentinel
        assert checksum_hex(data) == format(segment_checksum(data), "08x")

    def test_stored_segment_corpus_detected_by_the_read_path(self, session_db):
        storage = session_db.storage
        meta = storage.meta("clip")
        (gop, tile, quality), entry = sorted(
            meta.entries.items(), key=lambda item: str(item[0])
        )[0]
        data = storage.read_segment("clip", gop, tile, quality)
        intact = storage.verify_segment_bytes("clip", gop, tile, quality, data)
        assert intact.checksum == entry.checksum != 0
        for label, payload in segment_corruption_corpus(data, seed=11):
            if payload == data:
                continue
            with pytest.raises(SegmentCorruptError):
                storage.verify_segment_bytes("clip", gop, tile, quality, payload)


def _crashing_ingest(root: Path, crash_after: int) -> subprocess.CompletedProcess:
    """Run one ingest in a subprocess that SIGKILLs itself at the
    ``crash_after``-th durable publish (segments, metadata, marker)."""
    script = (
        "from pathlib import Path\n"
        "from repro import IngestConfig, Quality, TileGrid\n"
        "from repro.core.server import VisualCloud\n"
        "from repro.workloads.videos import synthetic_video\n"
        f"db = VisualCloud(Path({str(root)!r}))\n"
        "frames = synthetic_video('venice', width=64, height=32, fps=4.0,\n"
        "                         duration=2.0, seed=5)\n"
        "config = IngestConfig(grid=TileGrid(2, 2),\n"
        "                      qualities=(Quality.HIGH, Quality.LOW),\n"
        "                      gop_frames=4, fps=4.0, workers=1)\n"
        "db.ingest('clip', frames, config)\n"
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC if not existing else SRC + os.pathsep + existing
    env["REPRO_CRASH_AFTER_WRITES"] = str(crash_after)
    return subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, timeout=120
    )


class TestCrashConsistency:
    """SIGKILL mid-ingest: 2 GOPs x 4 tiles x 2 rungs = 16 segment
    publishes, then metadata (#17), then the marker (#18)."""

    @pytest.mark.parametrize("crash_after", [1, 5, 17])
    def test_crash_before_metadata_leaves_nothing_visible(self, tmp_path, crash_after):
        result = _crashing_ingest(tmp_path, crash_after)
        assert result.returncode in (-9, 137), result.stderr.decode()

        storage = StorageManager(tmp_path)
        with pytest.raises(CatalogError, match="no committed versions"):
            storage.catalog.versions("clip")

        report = storage.fsck(repair=True)
        assert report["dropped_videos"] == ["clip"]
        assert storage.fsck()["clean"]

        # The catalog is reusable: the same ingest now lands completely.
        from repro import IngestConfig, Quality, TileGrid
        from repro.workloads.videos import synthetic_video

        frames = synthetic_video(
            "venice", width=64, height=32, fps=4.0, duration=2.0, seed=5
        )
        config = IngestConfig(
            grid=TileGrid(2, 2),
            qualities=(Quality.HIGH, Quality.LOW),
            gop_frames=4,
            fps=4.0,
            workers=1,
        )
        meta = storage.ingest("clip", frames, config)
        assert storage.catalog.versions("clip") == [1]
        assert all(entry.checksum for entry in meta.entries.values())

    def test_crash_before_marker_rolls_forward(self, tmp_path):
        result = _crashing_ingest(tmp_path, crash_after=18)
        assert result.returncode in (-9, 137), result.stderr.decode()

        storage = StorageManager(tmp_path)
        # Metadata landed after every segment, so the version is complete
        # and visible even before recovery (roll-forward semantics) ...
        assert storage.catalog.versions("clip") == [1]
        data = storage.read_segment(
            "clip", 0, (0, 0), storage.meta("clip").qualities[0]
        )
        assert data
        # ... and fsck adopts it by writing the missing marker.
        report = storage.fsck(repair=True)
        assert report["adopted_versions"] == ["clip v1"]
        assert storage.catalog.marker_path("clip", 1).exists()
        assert storage.fsck()["clean"]


class TestFsckRecovery:
    def test_legacy_catalog_without_markers_is_adopted(self, db):
        from repro import IngestConfig, Quality, TileGrid
        from repro.workloads.videos import synthetic_video

        frames = synthetic_video(
            "venice", width=64, height=32, fps=4.0, duration=2.0, seed=9
        )
        db.ingest(
            "legacy",
            frames,
            IngestConfig(
                grid=TileGrid(2, 2),
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=4,
                fps=4.0,
            ),
        )
        marker = db.storage.catalog.marker_path("legacy", 1)
        marker.unlink()  # what a pre-marker catalog looks like on disk

        assert db.storage.catalog.versions("legacy") == [1]  # still served
        report = db.storage.fsck(repair=True)
        assert report["adopted_versions"] == ["legacy v1"]
        assert marker.exists()
        assert db.storage.fsck()["clean"]

    def test_torn_metadata_is_rolled_back(self, db):
        from repro import IngestConfig, Quality, TileGrid
        from repro.workloads.videos import synthetic_video

        frames = synthetic_video(
            "venice", width=64, height=32, fps=4.0, duration=2.0, seed=9
        )
        db.ingest(
            "torn",
            frames,
            IngestConfig(
                grid=TileGrid(2, 2),
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=4,
                fps=4.0,
            ),
        )
        catalog = db.storage.catalog
        catalog.marker_path("torn", 1).unlink()
        path = catalog.metadata_path("torn", 1)
        path.write_bytes(path.read_bytes()[:40])  # a torn, unparseable publish
        db.storage._meta_cache.clear()

        report = db.storage.fsck(repair=True)
        assert report["dropped_videos"] == ["torn"]
        assert not catalog.exists("torn")
        assert db.storage.fsck()["clean"]


class TestDropCoherence:
    def _ingest(self, db, name, seed):
        from repro import IngestConfig, Quality, TileGrid
        from repro.workloads.videos import synthetic_video

        frames = synthetic_video(
            "venice", width=64, height=32, fps=4.0, duration=2.0, seed=seed
        )
        db.ingest(
            name,
            frames,
            IngestConfig(
                grid=TileGrid(2, 2),
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=4,
                fps=4.0,
            ),
        )

    def test_drop_unpins_and_recreate_serves_fresh_bytes(self, db):
        self._ingest(db, "vr", seed=7)
        handle = start_server(
            db.storage,
            ServerConfig(
                drain_timeout=2.0,
                pin_budget_bytes=32 * 1024 * 1024,
                pin_threshold=1,
                prewarm=("vr",),
            ),
            registry=MetricsRegistry(),
        )
        try:
            server = handle.server
            assert len(server.hot) > 0

            db.drop("vr")
            deadline = time.monotonic() + 5.0
            while len(server.hot) and time.monotonic() < deadline:
                time.sleep(0.01)  # the unpin hops onto the event loop
            assert len(server.hot) == 0

            self._ingest(db, "vr", seed=21)  # different content, same name
            manifest = db.storage.build_manifest("vr")
            with HttpSegmentClient(handle.base_url) as client:
                for key in manifest.segment_sizes:
                    wire = client.fetch_segment("vr", key)
                    disk = db.storage.read_segment(
                        "vr", key.window, key.tile, key.quality
                    )
                    assert wire == disk, f"stale bytes for {key.to_path()}"
        finally:
            handle.stop()

    def test_listener_is_removed_on_stop(self, db):
        self._ingest(db, "vr", seed=7)
        handle = start_server(db.storage, ServerConfig(), registry=MetricsRegistry())
        assert db.storage._drop_listeners
        handle.stop()
        assert not db.storage._drop_listeners


NODES = ("node-0", "node-1", "node-2")


class TestReadRepair:
    """A real 3-node rf=2 tier; node-0's copy of one segment bit-rots."""

    @pytest.fixture()
    def tier(self, session_db, tmp_path):
        shard_map = ShardMap(nodes=NODES, replication_factor=2)
        node_roots = {node: tmp_path / node for node in NODES}
        materialize_shards(session_db.storage, node_roots, shard_map)
        registries = {node: MetricsRegistry() for node in NODES}
        storages = {
            node: StorageManager(node_roots[node], registry=registries[node])
            for node in NODES
        }
        handles = {
            node: start_server(
                storages[node],
                ServerConfig(node_id=node, shard_map=shard_map, peer_timeout=2.0),
                registry=registries[node],
            )
            for node in NODES
        }
        urls = {node: handles[node].base_url for node in NODES}
        for handle in handles.values():
            handle.update_shard_map(shard_map, urls)
        yield {
            "map": shard_map,
            "storages": storages,
            "registries": registries,
            "handles": handles,
            "urls": urls,
        }
        for handle in handles.values():
            handle.stop()

    def _rot(self, path: Path) -> bytes:
        """Flip one mid-payload bit via replace (never through a hard link)."""
        original = path.read_bytes()
        damaged = bytearray(original)
        damaged[len(damaged) // 2] ^= 0x08
        rotted = path.with_name(path.name + ".rot")
        rotted.write_bytes(bytes(damaged))
        os.replace(rotted, path)
        return original

    def test_corrupt_local_segment_is_served_and_healed(self, session_db, tier):
        manifest = session_db.storage.build_manifest("clip")
        key = next(
            key
            for key in sorted(manifest.segment_sizes, key=lambda k: k.to_path())
            if tier["map"].owns("node-0", "clip", key)
        )
        storage = tier["storages"]["node-0"]
        meta = storage.meta("clip")
        path = storage.catalog.segment_path(
            "clip",
            key.window,
            key.tile,
            key.quality,
            meta.entries[(key.window, key.tile, key.quality)].file_version,
        )
        original = self._rot(path)
        canonical = session_db.storage.read_segment(
            "clip", key.window, key.tile, key.quality
        )
        assert original == canonical

        with HttpSegmentClient(tier["urls"]["node-0"]) as client:
            served = client.fetch_segment("clip", key)

        assert served == canonical  # byte-identical despite local rot
        assert path.read_bytes() == canonical  # the disk copy was healed
        registry = tier["registries"]["node-0"]
        assert registry.counter("storage.repair_attempts").total() == 1
        assert registry.counter("storage.repair_success").total() == 1
        assert registry.counter("storage.repair_failed").total() == 0

    def test_repair_disabled_surfaces_the_corruption(self, session_db, tmp_path):
        shard_map = ShardMap(nodes=NODES, replication_factor=2)
        node_roots = {node: tmp_path / node for node in NODES}
        materialize_shards(session_db.storage, node_roots, shard_map)
        registry = MetricsRegistry()
        storage = StorageManager(node_roots["node-0"], registry=registry)
        handle = start_server(
            storage,
            ServerConfig(node_id="node-0", shard_map=shard_map, read_repair=False),
            registry=registry,
        )
        try:
            manifest = session_db.storage.build_manifest("clip")
            key = next(
                key
                for key in sorted(manifest.segment_sizes, key=lambda k: k.to_path())
                if shard_map.owns("node-0", "clip", key)
            )
            meta = storage.meta("clip")
            path = storage.catalog.segment_path(
                "clip",
                key.window,
                key.tile,
                key.quality,
                meta.entries[(key.window, key.tile, key.quality)].file_version,
            )
            self._rot(path)
            with HttpSegmentClient(handle.base_url) as client:
                with pytest.raises(SegmentCorruptError):
                    client.fetch_segment("clip", key)
            assert registry.counter("storage.repair_attempts").total() == 0
        finally:
            handle.stop()
