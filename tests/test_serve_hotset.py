"""The pinned hot set: admission, eviction, identity, and the server path.

The load-bearing test is byte identity under a poisoned backend: once a
segment is pinned, the storage layer is mutated underneath the server
and the wire must keep returning the originally-pinned bytes — proof the
fast path genuinely never touches storage, not merely that it is fast.
"""

from __future__ import annotations

import pytest

from repro.core.popularity import segment_weights
from repro.obs import MetricsRegistry
from repro.serve import HotSet, HttpSegmentClient, ServerConfig, start_server
from repro.serve.server import SegmentServer


def make_hotset(budget: int, threshold: int = 3, **kwargs) -> HotSet:
    return HotSet(budget, threshold, MetricsRegistry(), **kwargs)


class TestAdmission:
    def test_zero_budget_disables_everything(self):
        hot = make_hotset(0)
        assert not hot.enabled
        assert not hot.record("/a", b"data")
        assert not hot.pin("/a", b"data")
        assert hot.lookup("/a") is None

    def test_record_promotes_at_threshold(self):
        hot = make_hotset(1024, threshold=3)
        assert not hot.record("/a", b"x" * 10)
        assert not hot.record("/a", b"x" * 10)
        assert hot.record("/a", b"x" * 10)  # third hit crosses the threshold
        assert "/a" in hot
        assert hot.lookup("/a") is not None

    def test_oversized_body_is_rejected(self):
        hot = make_hotset(100)
        assert not hot.pin("/big", b"x" * 101)
        assert len(hot) == 0
        assert hot.bytes_pinned == 0

    def test_repinning_is_idempotent(self):
        hot = make_hotset(1024)
        assert hot.pin("/a", b"x" * 10)
        assert hot.pin("/a", b"x" * 10)
        assert len(hot) == 1
        assert hot.bytes_pinned == 10

    def test_candidate_tracking_is_bounded(self):
        hot = make_hotset(1024, threshold=2, max_tracked=4)
        for i in range(16):
            hot.record(f"/cold/{i}", b"x")
        assert len(hot._counts) <= 4
        # A genuinely hot path still promotes after the sweep.
        hot.record("/hot", b"x")
        assert hot.record("/hot", b"x")


class TestEviction:
    def test_colder_entries_make_room_for_hotter(self):
        hot = make_hotset(20)
        hot.pin("/cold", b"x" * 20)
        assert hot.lookup("/cold").hits == 1
        # Heat 5 beats the victim's 1 observed hit.
        assert hot.pin("/hot", b"y" * 20, heat=5)
        assert "/hot" in hot
        assert "/cold" not in hot
        assert hot.bytes_pinned == 20

    def test_hotter_incumbent_is_not_churned(self):
        hot = make_hotset(20)
        hot.pin("/popular", b"x" * 20)
        for _ in range(10):
            hot.lookup("/popular")
        assert not hot.pin("/oneoff", b"y" * 20, heat=3)
        assert "/popular" in hot

    def test_eviction_order_is_deterministic(self):
        hot = make_hotset(30)
        hot.pin("/a", b"x" * 10)
        hot.pin("/b", b"y" * 10)
        hot.pin("/c", b"z" * 10)
        hot.lookup("/b")
        hot.lookup("/c")
        # /a has 0 hits; ties would break by path, but here the single
        # coldest entry is unambiguous.
        assert hot.pin("/d", b"w" * 10, heat=1)
        assert "/a" not in hot
        assert {"/b", "/c", "/d"} <= set(hot._entries)

    def test_budget_accounting_survives_eviction_cycles(self):
        hot = make_hotset(100)
        for round_number in range(1, 6):
            hot.pin(f"/r{round_number}", b"x" * 60, heat=round_number * 10)
        assert hot.bytes_pinned == sum(e.body_length for e in hot._entries.values())
        assert hot.bytes_pinned <= 100


class TestHeat:
    """``heat()`` is the one ordering shared by eviction, the control
    plane's pre-warm ranking, and promotion — these tests pin its
    composition rules so the planner and the evictor can't disagree."""

    def test_heat_is_base_plus_observed(self):
        hot = make_hotset(1024)
        assert hot.heat("/a") == 0
        hot.set_base_heat({"/a": 10})
        assert hot.heat("/a") == 10
        hot.pin("/a", b"x" * 10)
        hot.lookup("/a")
        hot.lookup("/a")
        assert hot.heat("/a") == 12  # base 10 + 2 pinned hits

    def test_candidate_counts_feed_heat(self):
        hot = make_hotset(1024, threshold=5)
        hot.record("/b", b"x")
        hot.record("/b", b"x")
        assert hot.heat("/b") == 2  # not pinned yet: cold-path count

    def test_set_base_heat_replaces_not_merges(self):
        hot = make_hotset(1024)
        hot.set_base_heat({"/old": 7})
        hot.set_base_heat({"/new": 3})
        assert hot.heat("/old") == 0
        assert hot.heat("/new") == 3

    def test_base_heat_accelerates_promotion(self):
        hot = make_hotset(1024, threshold=3)
        hot.set_base_heat({"/predicted": 2})
        # One observed hit + base heat 2 crosses threshold 3.
        assert hot.record("/predicted", b"x" * 4)
        assert "/predicted" in hot

    def test_base_heat_protects_against_eviction(self):
        hot = make_hotset(20)
        hot.pin("/protected", b"x" * 20)
        hot.set_base_heat({"/protected": 100})
        assert not hot.pin("/challenger", b"y" * 20, heat=50)
        assert "/protected" in hot

    def test_set_budget_shrink_evicts_coldest_first(self):
        hot = make_hotset(30)
        hot.pin("/a", b"x" * 10)
        hot.pin("/b", b"y" * 10)
        hot.pin("/c", b"z" * 10)
        hot.lookup("/b")
        hot.lookup("/c")
        hot.set_budget(20)
        assert "/a" not in hot  # zero heat: the first victim
        assert {"/b", "/c"} <= set(hot.paths())
        assert hot.bytes_pinned == 20

    def test_set_budget_grow_enables_a_cold_set(self):
        hot = make_hotset(0)
        assert not hot.enabled
        hot.set_budget(1024)
        assert hot.enabled
        assert hot.pin("/a", b"x" * 10)

    def test_negative_budget_rejected(self):
        hot = make_hotset(10)
        with pytest.raises(ValueError, match=">= 0"):
            hot.set_budget(-1)


class TestInvalidation:
    def test_unpin_prefix_drops_entries_and_candidates(self):
        hot = make_hotset(1024, threshold=5)
        hot.pin("/segment/clip/0/0/0/high", b"a" * 10)
        hot.pin("/segment/clip/1/0/0/high", b"b" * 10)
        hot.pin("/segment/other/0/0/0/high", b"c" * 10)
        hot.record("/segment/clip/2/0/0/low", b"d")
        dropped = hot.unpin_prefix("/segment/clip/")
        assert dropped == 2
        assert len(hot) == 1
        assert hot.bytes_pinned == 10
        assert "/segment/clip/2/0/0/low" not in hot._counts

    def test_clear_resets_all_state(self):
        hot = make_hotset(1024)
        hot.pin("/a", b"x" * 10)
        hot.record("/b", b"y")
        hot.clear()
        assert len(hot) == 0
        assert hot.bytes_pinned == 0
        assert not hot._counts


class TestMetrics:
    def test_counters_and_gauges_track_the_lifecycle(self):
        registry = MetricsRegistry()
        hot = HotSet(20, 1, registry)
        hot.pin("/a", b"x" * 20)
        hot.lookup("/a")
        hot.lookup("/a")
        hot.pin("/b", b"y" * 20, heat=5)  # evicts /a
        hot.pin("/c", b"z" * 21)  # over budget: rejected
        snapshot = registry.snapshot()
        assert snapshot["counters"]["serve.pin_hits"] == 2
        assert snapshot["counters"]["serve.pin_promotions"] == 2
        assert snapshot["counters"]["serve.pin_evictions"] == 1
        assert snapshot["counters"]["serve.pin_rejects"] == 1
        assert snapshot["gauges"]["serve.pin_entries"] == 1
        assert snapshot["gauges"]["serve.pin_bytes"] == 20


@pytest.fixture()
def pinned_server(session_db):
    # A fresh registry per test: the session-scoped storage's registry
    # would otherwise accumulate counters across tests.
    handle = start_server(
        session_db.storage,
        ServerConfig(
            drain_timeout=2.0,
            pin_budget_bytes=32 * 1024 * 1024,
            pin_threshold=1,
            prewarm=("clip",),
        ),
        registry=MetricsRegistry(),
    )
    yield handle
    handle.stop()


class TestServerIntegration:
    def test_prewarm_pins_the_catalog(self, session_db, pinned_server):
        manifest = session_db.storage.build_manifest("clip")
        hot = pinned_server.server.hot
        assert len(hot) == len(manifest.segment_sizes)
        assert hot.bytes_pinned == sum(manifest.segment_sizes.values())

    def test_pinned_bytes_survive_a_poisoned_backend(self, session_db, pinned_server):
        """Pin hits must come from RAM: corrupt the storage read path and
        the wire output must not change."""
        manifest = session_db.storage.build_manifest("clip")
        expected = {
            key: session_db.storage.read_segment(
                "clip", key.window, key.tile, key.quality
            )
            for key in manifest.segment_sizes
        }
        server = pinned_server.server

        def poisoned(*args, **kwargs):
            raise AssertionError("pinned serve must not touch storage")

        original = server.storage.read_segment
        server.storage.read_segment = poisoned
        try:
            with HttpSegmentClient(pinned_server.base_url) as client:
                for key, data in expected.items():
                    assert client.fetch_segment("clip", key) == data
        finally:
            server.storage.read_segment = original
        snapshot = client_free_snapshot(server)
        assert snapshot["counters"]["serve.pin_hits"] == len(expected)

    def test_threshold_promotion_over_the_wire(self, session_db):
        handle = start_server(
            session_db.storage,
            ServerConfig(
                drain_timeout=2.0, pin_budget_bytes=32 * 1024 * 1024, pin_threshold=2
            ),
            registry=MetricsRegistry(),
        )
        try:
            manifest = session_db.storage.build_manifest("clip")
            key = min(manifest.segment_sizes, key=lambda k: k.to_path())
            with HttpSegmentClient(handle.base_url) as client:
                client.fetch_segment("clip", key)
                assert len(handle.server.hot) == 0
                client.fetch_segment("clip", key)
                assert len(handle.server.hot) == 1
                client.fetch_segment("clip", key)
            snapshot = client_free_snapshot(handle.server)
            assert snapshot["counters"]["serve.pin_hits"] == 1
        finally:
            handle.stop()

    def test_query_strings_hit_the_same_pin(self, session_db, pinned_server):
        manifest = session_db.storage.build_manifest("clip")
        key = min(manifest.segment_sizes, key=lambda k: k.to_path())
        expected = session_db.storage.read_segment(
            "clip", key.window, key.tile, key.quality
        )
        import urllib.request

        url = f"{pinned_server.base_url}/segment/clip/{key.to_path()}?session=7"
        with urllib.request.urlopen(url) as response:
            assert response.read() == expected

    def test_connection_budget_still_applies_to_pinned_hits(self, session_db):
        """Pinned hits bypass the in-flight ceiling but not the
        per-connection request budget — 429 shedding must keep working."""
        from repro.core.errors import TransientSegmentError

        handle = start_server(
            session_db.storage,
            ServerConfig(
                drain_timeout=2.0,
                pin_budget_bytes=32 * 1024 * 1024,
                pin_threshold=1,
                prewarm=("clip",),
                max_connection_requests=3,
            ),
        )
        try:
            manifest = session_db.storage.build_manifest("clip")
            key = min(manifest.segment_sizes, key=lambda k: k.to_path())
            with HttpSegmentClient(handle.base_url) as client:
                for _ in range(3):
                    client.fetch_segment("clip", key)
                with pytest.raises(TransientSegmentError) as caught:
                    client.fetch_segment("clip", key)
                assert caught.value.status == 429
        finally:
            handle.stop()


class TestPrewarmWeights:
    def test_weights_pin_hottest_first(self, session_db):
        """With a budget too small for everything, the popularity-ranked
        prewarm keeps the heavy-weighted segments."""
        storage = session_db.storage
        manifest = storage.build_manifest("clip")
        popularity = {(0, 0): 100.0, (0, 1): 1.0, (1, 0): 1.0, (1, 1): 1.0}
        weights = segment_weights(popularity, manifest)
        assert weights  # every key ranked
        ranked = sorted(weights, key=lambda k: (-weights[k], k.to_path()))
        hot_tile_bytes = sum(
            manifest.segment_sizes[k] for k in ranked if k.tile == (0, 0)
        )
        server = SegmentServer(
            storage,
            ServerConfig(pin_budget_bytes=hot_tile_bytes, pin_threshold=1),
        )
        pinned = server.prewarm_pins("clip", weights=weights)
        assert pinned > 0
        # Every (0,0) segment outweighs every other tile's, so the ones
        # that fit must all be from the hot tile.
        from repro.stream.dash import SegmentKey

        for path in server.hot._entries:
            key = SegmentKey.from_path(path.removeprefix("/segment/clip/"))
            assert key.tile == (0, 0)


def client_free_snapshot(server: SegmentServer) -> dict:
    return server.metrics.snapshot()


class TestReingestCoherence:
    """``unpin_prefix`` is the coherence hook for catalog mutation.

    Segment pin paths are version-free (``/segment/name/w/r/c/q``), so a
    reingest creates a new storage version *under* an existing pin: the
    server keeps answering from the RAM copy of the old version until the
    operator invalidates the prefix. These tests pin that whole story —
    staleness is real, the invalidation is surgical, and after it the
    wire serves the latest stored bytes again.
    """

    def _ingest(self, db, name="vr"):
        from repro import IngestConfig, Quality, TileGrid
        from repro.workloads.videos import synthetic_video

        config = IngestConfig(
            grid=TileGrid(2, 2),
            qualities=(Quality.HIGH, Quality.LOW),
            gop_frames=4,
            fps=4.0,
        )
        frames = synthetic_video(
            "venice", width=64, height=32, fps=4.0, duration=2.0, seed=7
        )
        db.ingest(name, frames, config)

    def _wire_bytes(self, base_url, storage, name):
        manifest = storage.build_manifest(name)
        with HttpSegmentClient(base_url) as client:
            return {
                key: client.fetch_segment(name, key) for key in manifest.segment_sizes
            }

    def _storage_bytes(self, storage, name):
        manifest = storage.build_manifest(name)
        return {
            key: storage.read_segment(name, key.window, key.tile, key.quality)
            for key in manifest.segment_sizes
        }

    def test_reingest_then_unpin_prefix_serves_latest_bytes(self, db):
        self._ingest(db)
        handle = start_server(
            db.storage,
            ServerConfig(
                drain_timeout=2.0,
                pin_budget_bytes=32 * 1024 * 1024,
                pin_threshold=1,
                prewarm=("vr",),
            ),
            registry=MetricsRegistry(),
        )
        try:
            server = handle.server
            assert len(server.hot) > 0
            before = self._storage_bytes(db.storage, "vr")
            assert self._wire_bytes(handle.base_url, db.storage, "vr") == before

            db.reingest("vr")
            after = self._storage_bytes(db.storage, "vr")

            # The pins predate the reingest: the wire still answers with
            # the old version's bytes for every pinned key.
            assert self._wire_bytes(handle.base_url, db.storage, "vr") == before

            dropped = server.hot.unpin_prefix("/segment/vr/")
            assert dropped == len(before)
            assert len(server.hot) == 0

            # With the stale pins gone the server reads storage again —
            # byte-identical to the latest stored version.
            assert self._wire_bytes(handle.base_url, db.storage, "vr") == after
        finally:
            handle.stop()

    def test_unpin_prefix_is_surgical_across_videos(self, db):
        self._ingest(db, "alpha")
        self._ingest(db, "beta")
        server = SegmentServer(
            db.storage,
            ServerConfig(pin_budget_bytes=32 * 1024 * 1024, pin_threshold=1),
        )
        pinned_alpha = server.prewarm_pins("alpha")
        pinned_beta = server.prewarm_pins("beta")
        assert pinned_alpha > 0 and pinned_beta > 0

        db.reingest("alpha")
        dropped = server.hot.unpin_prefix("/segment/alpha/")
        assert dropped == pinned_alpha
        # Beta's pins are untouched — invalidation is per-prefix, not a
        # full flush.
        assert len(server.hot) == pinned_beta
        assert all(path.startswith("/segment/beta/") for path in server.hot.paths())
