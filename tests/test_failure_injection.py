"""Failure injection: corrupted files, truncated inputs, hostile bytes.

A storage system's error paths are part of its contract: a damaged
segment must surface as a database error (never a wrong image or an
unrelated crash), and the container parsers must reject arbitrary bytes
with controlled exceptions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IngestConfig, Quality, TileGrid
from repro.core.errors import CatalogError, SegmentNotFoundError
from repro.video.frame import Frame
from repro.video.gop import GopCodec, decode_any_gop, gop_byte_length
from repro.video.mp4 import parse_atoms
from repro.video.tiles import TiledGop
from repro.workloads.videos import checkerboard_video, synthetic_video

CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH,),
    gop_frames=4,
    fps=4.0,
)


@pytest.fixture()
def loaded(db):
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=2, seed=31)
    db.ingest("clip", frames, CONFIG)
    return db


def segment_path(db, gop=0, tile=(0, 0)):
    meta = db.meta("clip")
    entry = meta.entries[(gop, tile, Quality.HIGH)]
    return db.storage.catalog.segment_path(
        "clip", gop, tile, Quality.HIGH, entry.file_version
    )


class TestDamagedSegments:
    def test_truncated_segment_detected_by_size_check(self, loaded):
        path = segment_path(loaded)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SegmentNotFoundError, match="index says"):
            loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)

    def test_deleted_segment_file(self, loaded):
        segment_path(loaded).unlink()
        with pytest.raises(FileNotFoundError):
            loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)

    def test_bitflip_in_payload_fails_decode_controlled(self, loaded):
        path = segment_path(loaded)
        data = bytearray(path.read_bytes())
        data[8] ^= 0xFF  # inside the GOP header region
        path.write_bytes(bytes(data))
        payload = loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
        with pytest.raises(ValueError):
            decode_any_gop(payload)

    def test_cache_does_not_mask_corruption_before_first_read(self, loaded):
        # Corrupt before any read: the size check fires on the cold path.
        path = segment_path(loaded)
        path.write_bytes(b"")
        with pytest.raises(SegmentNotFoundError):
            loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)


class TestDamagedMetadata:
    def test_truncated_metadata_rejected(self, loaded):
        path = loaded.storage.catalog.metadata_path("clip", 1)
        path.write_bytes(path.read_bytes()[:20])
        loaded.storage._meta_cache.clear()
        with pytest.raises((CatalogError, ValueError)):
            loaded.meta("clip")

    def test_garbage_metadata_rejected(self, loaded):
        path = loaded.storage.catalog.metadata_path("clip", 1)
        path.write_bytes(b"\xde\xad\xbe\xef" * 64)
        loaded.storage._meta_cache.clear()
        with pytest.raises((CatalogError, ValueError)):
            loaded.meta("clip")

    def test_metadata_without_vcld_atoms_rejected(self, loaded):
        from repro.video.mp4 import Atom, Mp4File

        path = loaded.storage.catalog.metadata_path("clip", 1)
        path.write_bytes(Mp4File(atoms=[Atom("moov", children=[])]).serialize())
        loaded.storage._meta_cache.clear()
        with pytest.raises(CatalogError, match="missing VisualCloud atoms"):
            loaded.meta("clip")


class TestHostileBytes:
    """Parsers must fail with ValueError/EOFError on arbitrary input —
    never index errors, struct errors, or silent nonsense."""

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_gop_decoder_contains_failures(self, data):
        try:
            frames = decode_any_gop(data)
        except (ValueError, EOFError):
            return
        # If it "decoded", the framing must at least have been coherent.
        assert isinstance(frames, list)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_gop_length_parser_contains_failures(self, data):
        try:
            length = gop_byte_length(data)
        except (ValueError, EOFError):
            return
        assert 0 < length <= len(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_tiled_gop_parser_contains_failures(self, data):
        try:
            TiledGop.from_bytes(data)
        except (ValueError, EOFError):
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_atom_parser_contains_failures(self, data):
        try:
            atoms = parse_atoms(data)
        except (ValueError, UnicodeDecodeError):
            return
        assert isinstance(atoms, list)

    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_frame_decoder_contains_failures(self, data):
        from repro.video.codec import FrameCodec

        codec = FrameCodec(Quality.HIGH)
        try:
            frame = codec.decode_frame(data, 16, 16, None)
        except (ValueError, EOFError):
            return
        assert isinstance(frame, Frame)

    def test_valid_gop_with_flipped_payload_bits_never_crashes_uncontrolled(self):
        frames = checkerboard_video(32, 32, frames=3)
        data = bytearray(GopCodec(Quality.LOW).encode_gop(frames))
        import random

        rng = random.Random(0)
        for _ in range(50):
            corrupted = bytearray(data)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            try:
                decode_any_gop(bytes(corrupted))
            except (ValueError, EOFError):
                pass  # a controlled failure is a pass
