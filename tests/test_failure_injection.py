"""Failure injection: corrupted files, truncated inputs, hostile bytes.

A storage system's error paths are part of its contract: a damaged
segment must surface as a database error (never a wrong image, a raw
``FileNotFoundError``, or an unrelated crash), and the container parsers
must reject arbitrary bytes with controlled exceptions.

The corruption cases are no longer hand-rolled; they come from the
structural corpora in :mod:`repro.chaos.corrupt` — truncation at every
framing boundary, bit flips aimed at header vs payload, the empty file —
so every parser sees damage exactly where real damage lands.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IngestConfig, Quality, TileGrid
from repro.chaos.corrupt import (
    gop_boundaries,
    metadata_corruption_corpus,
    segment_corruption_corpus,
)
from repro.core.errors import CatalogError, SegmentCorruptError, SegmentNotFoundError
from repro.video.frame import Frame
from repro.video.gop import GopCodec, decode_any_gop, gop_byte_length
from repro.video.mp4 import parse_atoms
from repro.video.tiles import TiledGop
from repro.workloads.videos import checkerboard_video, synthetic_video

CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH,),
    gop_frames=4,
    fps=4.0,
)

# A canonical encoded GOP, fixed at collection time so the corruption
# corpus can drive pytest parametrization with one test id per case.
_CANONICAL_GOP = GopCodec(Quality.HIGH).encode_gop(checkerboard_video(32, 32, frames=4))
SEGMENT_CORPUS = segment_corruption_corpus(_CANONICAL_GOP, seed=5)


@pytest.fixture()
def loaded(db):
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=2, seed=31)
    db.ingest("clip", frames, CONFIG)
    return db


def segment_path(db, gop=0, tile=(0, 0)):
    meta = db.meta("clip")
    entry = meta.entries[(gop, tile, Quality.HIGH)]
    return db.storage.catalog.segment_path(
        "clip", gop, tile, Quality.HIGH, entry.file_version
    )


class TestSegmentCorpus:
    """The decoder's contract over the structural corruption corpus."""

    def test_corpus_covers_the_framing(self):
        boundaries = gop_boundaries(_CANONICAL_GOP)
        # 0, magic end, header end, per-frame varint/payload edges, end.
        assert boundaries[0] == 0
        assert 4 in boundaries and 12 in boundaries
        assert boundaries[-1] == len(_CANONICAL_GOP)
        labels = [label for label, _ in SEGMENT_CORPUS]
        assert "zero-length" in labels
        assert any(label.startswith("truncate@") for label in labels)
        assert any(label.startswith("header-bitflip@") for label in labels)
        assert any(label.startswith("payload-bitflip@") for label in labels)

    @pytest.mark.parametrize(
        "label,payload", SEGMENT_CORPUS, ids=[label for label, _ in SEGMENT_CORPUS]
    )
    def test_decode_of_corrupted_gop_is_controlled(self, label, payload):
        try:
            frames = decode_any_gop(payload)
        except (ValueError, EOFError):
            return  # a controlled failure is a pass
        assert isinstance(frames, list)
        assert all(isinstance(frame, Frame) for frame in frames)

    @pytest.mark.parametrize(
        "label,payload",
        [case for case in SEGMENT_CORPUS if case[0].startswith(("truncate", "zero"))],
        ids=[
            case[0]
            for case in SEGMENT_CORPUS
            if case[0].startswith(("truncate", "zero"))
        ],
    )
    def test_truncation_never_decodes(self, label, payload):
        # A short stream must never quietly yield frames: either the
        # header, the frame count, or a frame payload comes up short.
        with pytest.raises((ValueError, EOFError)):
            decode_any_gop(payload)

    def test_corpus_is_seed_deterministic(self):
        again = segment_corruption_corpus(_CANONICAL_GOP, seed=5)
        assert again == SEGMENT_CORPUS
        shifted = segment_corruption_corpus(_CANONICAL_GOP, seed=6)
        assert [label for label, _ in shifted] != [label for label, _ in SEGMENT_CORPUS]


class TestDamagedSegments:
    def test_truncated_segment_detected_by_size_check(self, loaded):
        path = segment_path(loaded)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SegmentNotFoundError, match="index says"):
            loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)

    def test_deleted_segment_raises_database_error(self, loaded):
        # Regression: this used to leak a raw FileNotFoundError out of
        # Streamer.serve when the file vanished under a live session.
        segment_path(loaded).unlink()
        with pytest.raises(SegmentNotFoundError, match="missing from disk") as excinfo:
            loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
        assert not isinstance(excinfo.value, FileNotFoundError)
        assert isinstance(excinfo.value.__cause__, FileNotFoundError)

    def test_deleted_segment_does_not_crash_a_session(self, loaded):
        # End-to-end: the streamer degrades/skips, it never propagates
        # an OS error to the viewer.
        from repro import ConstantBandwidth, SessionConfig, UniformAdaptive
        from repro.workloads.users import ViewerPopulation

        segment_path(loaded, gop=1, tile=(0, 1)).unlink()
        loaded.storage.segment_cache.invalidate_prefix("clip")
        trace = ViewerPopulation(seed=3).trace(0, duration=2.0, rate=10.0)
        config = SessionConfig(
            policy=UniformAdaptive(), bandwidth=ConstantBandwidth(50_000.0)
        )
        report = loaded.serve("clip", (trace, config))
        assert len(report.records) == loaded.meta("clip").gop_count

    def test_corrupted_segment_reads_are_controlled(self, loaded):
        # Every corpus case applied to the real on-disk segment: the
        # storage layer either refuses with a database error or serves
        # bytes whose decode fails in a controlled way.
        path = segment_path(loaded)
        original = path.read_bytes()
        corpus = segment_corruption_corpus(original, seed=9)
        for label, payload in corpus:
            path.write_bytes(payload)
            loaded.storage.segment_cache.invalidate_prefix("clip")
            try:
                data = loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
            except SegmentNotFoundError:
                continue  # includes SegmentCorruptError (size mismatch)
            assert len(data) == len(original), label
            try:
                frames = decode_any_gop(data)
            except (ValueError, EOFError):
                continue
            assert isinstance(frames, list), label

    def test_size_mismatch_is_reported_as_corruption(self, loaded):
        path = segment_path(loaded)
        path.write_bytes(b"")
        with pytest.raises(SegmentCorruptError):
            loaded.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)


class TestDamagedMetadata:
    def test_metadata_corpus_never_crashes_uncontrolled(self, loaded):
        path = loaded.storage.catalog.metadata_path("clip", 1)
        original = path.read_bytes()
        for label, payload in metadata_corruption_corpus(original, seed=3):
            path.write_bytes(payload)
            loaded.storage._meta_cache.clear()
            try:
                meta = loaded.meta("clip")
            except (CatalogError, ValueError, EOFError):
                continue  # controlled rejection
            # A surviving parse (e.g. a flipped bit in a name payload)
            # must still describe the same segmentation.
            assert meta.gop_count >= 1, label

    def test_truncated_metadata_rejected(self, loaded):
        path = loaded.storage.catalog.metadata_path("clip", 1)
        path.write_bytes(path.read_bytes()[:20])
        loaded.storage._meta_cache.clear()
        with pytest.raises((CatalogError, ValueError)):
            loaded.meta("clip")

    def test_garbage_metadata_rejected(self, loaded):
        path = loaded.storage.catalog.metadata_path("clip", 1)
        path.write_bytes(b"\xde\xad\xbe\xef" * 64)
        loaded.storage._meta_cache.clear()
        with pytest.raises((CatalogError, ValueError)):
            loaded.meta("clip")

    def test_metadata_without_vcld_atoms_rejected(self, loaded):
        from repro.video.mp4 import Atom, Mp4File

        path = loaded.storage.catalog.metadata_path("clip", 1)
        path.write_bytes(Mp4File(atoms=[Atom("moov", children=[])]).serialize())
        loaded.storage._meta_cache.clear()
        with pytest.raises(CatalogError, match="missing VisualCloud atoms"):
            loaded.meta("clip")


class TestHostileBytes:
    """Parsers must fail with ValueError/EOFError on arbitrary input —
    never index errors, struct errors, or silent nonsense."""

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_gop_decoder_contains_failures(self, data):
        try:
            frames = decode_any_gop(data)
        except (ValueError, EOFError):
            return
        # If it "decoded", the framing must at least have been coherent.
        assert isinstance(frames, list)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_gop_length_parser_contains_failures(self, data):
        try:
            length = gop_byte_length(data)
        except (ValueError, EOFError):
            return
        assert 0 < length <= len(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_tiled_gop_parser_contains_failures(self, data):
        try:
            TiledGop.from_bytes(data)
        except (ValueError, EOFError):
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_atom_parser_contains_failures(self, data):
        try:
            atoms = parse_atoms(data)
        except (ValueError, UnicodeDecodeError):
            return
        assert isinstance(atoms, list)

    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_frame_decoder_contains_failures(self, data):
        from repro.video.codec import FrameCodec

        codec = FrameCodec(Quality.HIGH)
        try:
            frame = codec.decode_frame(data, 16, 16, None)
        except (ValueError, EOFError):
            return
        assert isinstance(frame, Frame)
