"""Tests for the declarative query layer and its homomorphic planner."""

import math

import numpy as np
import pytest

from repro.core import udfs
from repro.core.errors import QueryError
from repro.core.query import (
    EncodedVideo,
    QueryExecutor,
    RawVideo,
    Scan,
    _aligned_tile_set,
)
from repro.core.storage import IngestConfig, StorageManager
from repro.geometry.grid import TileGrid
from repro.video.frame import psnr
from repro.video.quality import Quality
from repro.workloads.videos import synthetic_video


@pytest.fixture(scope="module")
def storage(tmp_path_factory) -> StorageManager:
    manager = StorageManager(tmp_path_factory.mktemp("qstore"))
    config = IngestConfig(
        grid=TileGrid(2, 2),
        qualities=(Quality.HIGH, Quality.LOW),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=3.0, seed=7)
    manager.ingest("clip", frames, config)
    return manager


@pytest.fixture()
def executor(storage) -> QueryExecutor:
    return QueryExecutor(storage)


class TestScan:
    def test_scan_returns_encoded(self, executor):
        result = executor.execute(Scan("clip"))
        assert isinstance(result.value, EncodedVideo)
        assert len(result.value.windows) == 3
        assert result.stats.decode_ops == 0

    def test_scan_specific_quality(self, executor):
        high = executor.execute(Scan("clip", quality=Quality.HIGH)).value
        low = executor.execute(Scan("clip", quality=Quality.LOW)).value
        assert low.byte_size < high.byte_size


class TestTemporalSelect:
    def test_aligned_select_is_homomorphic(self, executor):
        result = executor.execute(Scan("clip").select(time=(1.0, 2.0)))
        assert len(result.value.windows) == 1
        assert result.stats.decode_ops == 0
        assert "select.time:homomorphic-gop" in result.stats.operator_paths

    def test_unaligned_select_decodes(self, executor):
        result = executor.execute(Scan("clip").select(time=(0.5, 1.5)))
        assert isinstance(result.value, RawVideo)
        assert result.stats.decode_ops > 0
        total_frames = sum(len(w) for w in result.value.windows)
        assert total_frames == 4  # exactly one second at 4 fps

    def test_empty_selection_rejected(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").select(time=(2.0, 2.0)))

    def test_out_of_range_selection_rejected(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").select(time=(5.0, 6.0)))


class TestAngularSelect:
    def test_aligned_select_is_homomorphic(self, executor):
        result = executor.execute(Scan("clip").select(theta=(0.0, math.pi)))
        assert isinstance(result.value, EncodedVideo)
        assert "select.angular:homomorphic-tile" in result.stats.operator_paths
        assert set(result.value.windows[0].payloads) == {(0, 0), (1, 0)}

    def test_phi_select_picks_row(self, executor):
        result = executor.execute(Scan("clip").select(phi=(0.0, math.pi / 2)))
        assert set(result.value.windows[0].payloads) == {(0, 0), (0, 1)}

    def test_unaligned_select_crops_pixels(self, executor):
        result = executor.execute(Scan("clip").select(theta=(0.3, 2.0)))
        assert isinstance(result.value, RawVideo)
        frame = result.value.windows[0][0]
        assert frame.width < 64
        assert frame.width % 16 == 0

    def test_select_needs_a_dimension(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").select())

    def test_selection_outside_sphere_rejected(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").select(phi=(0.0, 4.0)))


class TestAlignedTileSet:
    def test_full_sphere(self):
        grid = TileGrid(2, 2)
        assert _aligned_tile_set(grid, None, None) == set(grid.tiles())

    def test_unaligned_returns_none(self):
        assert _aligned_tile_set(TileGrid(2, 2), (0.1, math.pi), None) is None

    def test_aligned_range(self):
        grid = TileGrid(2, 4)
        tiles = _aligned_tile_set(grid, (math.pi / 2, math.pi), (0.0, math.pi / 2))
        assert tiles == {(0, 1)}


class TestMap:
    def test_map_applies_udf(self, executor, storage):
        result = executor.execute(Scan("clip").map(udfs.invert))
        frame = result.value.windows[0][0]
        original = storage.decode_window("clip", 0, Quality.HIGH)[0]
        assert np.array_equal(frame.y, 255 - original.y)

    def test_map_counts_frames(self, executor):
        result = executor.execute(Scan("clip").map(udfs.grayscale))
        assert result.stats.frames_processed >= 12


class TestUnion:
    def test_tile_disjoint_union_is_homomorphic(self, executor):
        left = Scan("clip").select(theta=(0.0, math.pi))
        right = Scan("clip", quality=Quality.LOW).select(theta=(math.pi, 2 * math.pi))
        result = executor.execute(left.union(right))
        assert isinstance(result.value, EncodedVideo)
        assert "union:homomorphic-tile" in result.stats.operator_paths
        window = result.value.windows[0]
        assert window.tile_quality(0, 0) is Quality.HIGH
        assert window.tile_quality(0, 1) is Quality.LOW

    def test_overlapping_union_prefers_right(self, executor):
        left = Scan("clip")
        right = Scan("clip", quality=Quality.LOW)
        result = executor.execute(left.union(right))
        window = result.value.windows[0]
        assert window.tile_quality(0, 0) is Quality.LOW  # LAST semantics

    def test_mismatched_window_counts_rejected(self, executor):
        left = Scan("clip").select(time=(0.0, 1.0)).map(udfs.grayscale)
        right = Scan("clip").map(udfs.grayscale)
        with pytest.raises(QueryError):
            executor.execute(left.union(right))


class TestEncodeStore:
    def test_encode_noop_when_already_at_quality(self, executor):
        result = executor.execute(Scan("clip").encode(Quality.HIGH))
        assert "encode:noop" in result.stats.operator_paths
        assert result.stats.encode_ops == 0

    def test_encode_requality_round_trips(self, executor):
        result = executor.execute(Scan("clip").encode(Quality.LOWEST))
        assert isinstance(result.value, EncodedVideo)
        assert result.stats.decode_ops == 3
        assert result.stats.encode_ops == 3

    def test_store_persists_result(self, executor, storage):
        query = Scan("clip").select(time=(0.0, 2.0)).map(udfs.grayscale).store("gray")
        result = executor.execute(query)
        meta = result.value
        assert meta.name == "gray"
        assert storage.exists("gray")
        decoded = storage.decode_window("gray", 0, meta.qualities[0])
        assert np.all(np.abs(decoded[0].u.astype(int) - 128) < 8)

    def test_store_grayscale_preserves_luma(self, executor, storage):
        executor.execute(Scan("clip").map(udfs.grayscale).store("gray2"))
        original = storage.decode_window("clip", 0, Quality.HIGH)[0]
        stored = storage.decode_window("gray2", 0, Quality.HIGH)[0]
        assert psnr(original, stored) > 30


class TestPipelines:
    def test_full_pipeline_stats(self, executor):
        """The watermark-style pipeline: scan, trim, transform, store."""
        query = (
            Scan("clip")
            .select(time=(0.0, 2.0))
            .map(udfs.brighten(20))
            .store("bright")
        )
        result = executor.execute(query)
        paths = result.stats.operator_paths
        assert paths[0] == "scan:indexed"
        assert "select.time:homomorphic-gop" in paths
        assert "store:catalog" in paths

    def test_homomorphic_pipeline_never_decodes(self, executor):
        query = Scan("clip").select(time=(1.0, 3.0)).select(theta=(0.0, math.pi))
        result = executor.execute(query)
        assert result.stats.decode_ops == 0
        assert result.stats.encode_ops == 0
        assert result.stats.homomorphic_ops >= 3


class TestPartition:
    def test_coarsen_is_homomorphic(self, executor):
        result = executor.execute(Scan("clip").partition(3.0))
        assert isinstance(result.value, EncodedVideo)
        assert len(result.value.windows) == 1
        assert result.value.windows[0].frame_count == 12
        assert result.stats.decode_ops == 0
        assert "partition:homomorphic-gop-merge" in result.stats.operator_paths

    def test_coarsened_video_decodes_faithfully(self, executor, storage):
        result = executor.execute(Scan("clip").partition(3.0))
        decoded = result.value.windows[0].decode()
        reference = storage.decode_window("clip", 0, Quality.HIGH)
        assert decoded[0].equals(reference[0])

    def test_same_duration_is_noop(self, executor):
        result = executor.execute(Scan("clip").partition(1.0))
        assert "partition:noop" in result.stats.operator_paths

    def test_finer_partition_decodes(self, executor):
        result = executor.execute(Scan("clip").partition(0.5))
        assert isinstance(result.value, RawVideo)
        assert len(result.value.windows) == 6
        assert all(len(window) == 2 for window in result.value.windows)

    def test_partition_then_store_round_trips(self, executor, storage):
        executor.execute(Scan("clip").partition(3.0).store("coarse"))
        meta = storage.meta("coarse")
        assert meta.gop_count == 1
        assert meta.gop_frame_counts == [12]

    def test_rejects_non_positive(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").partition(0.0))

    def test_rejects_sub_frame_partition(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").partition(0.01))


class TestDiscretize:
    def test_halve_frame_rate(self, executor):
        result = executor.execute(Scan("clip").discretize(2.0))
        assert isinstance(result.value, RawVideo)
        assert result.value.fps == 2.0
        total = sum(len(window) for window in result.value.windows)
        assert total == 6  # 12 frames at 4 fps -> 6 at 2 fps

    def test_same_rate_is_noop(self, executor):
        result = executor.execute(Scan("clip").discretize(4.0))
        assert "discretize:noop" in result.stats.operator_paths

    def test_kept_frames_are_originals(self, executor, storage):
        result = executor.execute(Scan("clip").discretize(2.0))
        reference = storage.decode_window("clip", 0, Quality.HIGH)
        flat = [frame for window in result.value.windows for frame in window]
        assert flat[0].equals(reference[0])
        assert flat[1].equals(reference[2])

    def test_rejects_non_divisor(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").discretize(3.0))

    def test_rejects_upsampling(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").discretize(8.0))

    def test_rejects_non_positive(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Scan("clip").discretize(0.0))
