"""Concurrency stress under chaos: many threads, one cache, injected
faults and evictions — the fencing invariants and the exactness of the
metrics accounting must both survive.

Marked ``slow``: run with ``pytest -m slow`` (the default suite deselects
it via ``-m "not slow"`` in CI's quick lane; the chaos lane runs it).
"""

import threading

import pytest

from repro import IngestConfig, MetricsRegistry, Quality, TileGrid, VisualCloud
from repro.chaos import ChaosSegmentCache, ChaosStorageManager, FaultPlan, FaultRule
from repro.core.cache import LruSegmentCache
from repro.core.errors import SegmentNotFoundError, TransientSegmentError
from repro.workloads.videos import synthetic_video

THREADS = 8
ROUNDS = 40

pytestmark = pytest.mark.slow


@pytest.fixture()
def stressed_db(tmp_path):
    db = VisualCloud(tmp_path)
    config = IngestConfig(
        grid=TileGrid(2, 2),
        qualities=(Quality.HIGH, Quality.LOW),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=17)
    db.ingest("clip", frames, config)
    return db


def _hammer(storage, meta, errors, barrier, thread_id):
    barrier.wait()
    keys = [
        (gop, tile, quality)
        for gop in range(meta.gop_count)
        for tile in meta.grid.tiles()
        for quality in (Quality.HIGH, Quality.LOW)
    ]
    for round_number in range(ROUNDS):
        # Every thread walks the keys at a different stride so loads,
        # hits, and invalidations genuinely interleave.
        key = keys[(round_number * (thread_id + 3)) % len(keys)]
        gop, tile, quality = key
        try:
            data = storage.read_segment("clip", gop, tile, quality)
            assert data, "a read that returns must return bytes"
        except (TransientSegmentError, SegmentNotFoundError):
            pass  # the error contract: injected faults surface as these
        except Exception as error:  # noqa: BLE001 — anything else is the bug
            errors.append(f"thread {thread_id}: {type(error).__name__}: {error}")


class TestChaosConcurrencyStress:
    def test_fencing_and_metrics_hold_under_chaotic_load(self, stressed_db):
        db = stressed_db
        meta = db.meta("clip")
        plan = FaultPlan(
            rules=(
                FaultRule(kind="flaky", rate=0.10, burst=2),
                FaultRule(kind="missing", rate=0.05),
                FaultRule(kind="evict", target="cache", every=7),
            ),
            seed=29,
        )
        db.storage.segment_cache = ChaosSegmentCache(db.storage.segment_cache, plan)
        storage = ChaosStorageManager(db.storage, plan)

        base_hits = db.metrics.counter("cache.hits").total()
        base_misses = db.metrics.counter("cache.misses").total()
        base_reads = db.metrics.counter("storage.segments_read").total()

        errors: list[str] = []
        barrier = threading.Barrier(THREADS + 1)
        threads = [
            threading.Thread(
                target=_hammer, args=(storage, meta, errors, barrier, i)
            )
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()

        # A competing invalidator exercises the fence against in-flight
        # loads the whole time.
        stop = threading.Event()

        def invalidate_loop():
            while not stop.is_set():
                db.storage.segment_cache.invalidate_prefix("clip")

        invalidator = threading.Thread(target=invalidate_loop)
        invalidator.start()
        for thread in threads:
            thread.join()
        stop.set()
        invalidator.join()

        assert errors == [], errors

        cache = db.storage.segment_cache.inner
        metrics = db.metrics

        # Exact accounting: every get_or_load is either a hit or a miss.
        hits = metrics.counter("cache.hits").total() - base_hits
        misses = metrics.counter("cache.misses").total() - base_misses
        segment_reads = metrics.counter("storage.segments_read").total() - base_reads
        assert hits + misses == segment_reads
        # Every read that reached the inner store was counted by the plan
        # minus the ones the plan failed before the store was touched.
        injected_storage_faults = sum(
            count
            for kind, count in plan.injected.items()
            if kind in ("flaky", "missing")
        )
        assert plan.calls("storage") == segment_reads + injected_storage_faults

        # Fencing invariant: whatever survived in the cache matches disk
        # bit for bit (no stale publish won a race with an invalidation).
        for key, payload in cache.items():
            name, gop, tile, quality, file_version = key
            path = db.storage.catalog.segment_path(name, gop, tile, quality, file_version)
            assert path.exists(), f"cached entry for vanished file {key}"
            assert path.read_bytes() == payload, f"stale bytes cached for {key}"

        # Occupancy gauges agree with the cache's actual contents.
        entries = cache.items()
        assert metrics.gauge("cache.entries").value() == len(entries)
        assert metrics.gauge("cache.bytes").value() == sum(
            len(payload) for _, payload in entries
        )

    def test_single_flight_under_eviction_storm(self, tmp_path):
        # A standalone cache: THREADS threads demand the same key while
        # an eviction rule keeps knocking it out. Loads must equal the
        # misses recorded — no lost updates, no double counting.
        registry = MetricsRegistry()
        inner = LruSegmentCache(capacity_bytes=1 << 20, registry=registry)
        plan = FaultPlan(
            rules=(FaultRule(kind="evict", target="cache", every=3),), seed=31
        )
        cache = ChaosSegmentCache(inner, plan)
        key = ("clip", 0, (0, 0), Quality.HIGH, 1)
        load_count = threading.Lock()
        loads = [0]

        def loader():
            with load_count:
                loads[0] += 1
            return b"\xab" * 128

        barrier = threading.Barrier(THREADS)
        results = []

        def worker():
            barrier.wait()
            for _ in range(ROUNDS):
                results.append(cache.get_or_load(key, loader))

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results) == THREADS * ROUNDS
        assert all(result == b"\xab" * 128 for result in results)
        hits = registry.counter("cache.hits").total()
        misses = registry.counter("cache.misses").total()
        assert hits + misses == THREADS * ROUNDS
        # Single-flight: every load corresponds to a recorded miss, and
        # concurrent missers shared leaders rather than stampeding.
        assert loads[0] <= misses
        assert loads[0] >= 1
