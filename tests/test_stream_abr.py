"""Unit tests for quality-assignment policies."""

import math

import pytest

from repro.geometry.grid import TileGrid
from repro.stream.abr import (
    NaiveFullQuality,
    PredictiveTilingPolicy,
    UniformAdaptive,
    estimate_budget,
)
from repro.stream.dash import Manifest, SegmentKey
from repro.video.quality import Quality

QUALITIES = (Quality.HIGH, Quality.MEDIUM, Quality.LOW)
SIZES = {Quality.HIGH: 1000, Quality.MEDIUM: 400, Quality.LOW: 100}


@pytest.fixture()
def manifest() -> Manifest:
    grid = TileGrid(2, 2)
    sizes = {
        SegmentKey(window, tile, quality): SIZES[quality]
        for window in range(2)
        for tile in grid.tiles()
        for quality in QUALITIES
    }
    return Manifest(
        video="demo",
        width=64,
        height=32,
        fps=30,
        window_duration=1.0,
        window_count=2,
        grid=grid,
        qualities=QUALITIES,
        segment_sizes=sizes,
    )


class TestNaive:
    def test_everything_at_best(self, manifest):
        assignment = NaiveFullQuality().assign(manifest, 0, set(), budget_bytes=1.0)
        assert set(assignment) == set(manifest.grid.tiles())
        assert all(quality is Quality.HIGH for quality in assignment.values())

    def test_ignores_budget(self, manifest):
        tiny = NaiveFullQuality().assign(manifest, 0, set(), budget_bytes=1.0)
        huge = NaiveFullQuality().assign(manifest, 0, set(), budget_bytes=1e12)
        assert tiny == huge


class TestUniform:
    def test_picks_best_that_fits(self, manifest):
        # Full sphere: HIGH=4000, MEDIUM=1600, LOW=400.
        assignment = UniformAdaptive().assign(manifest, 0, set(), budget_bytes=2000)
        assert set(assignment.values()) == {Quality.MEDIUM}

    def test_high_when_budget_allows(self, manifest):
        assignment = UniformAdaptive().assign(manifest, 0, set(), budget_bytes=5000)
        assert set(assignment.values()) == {Quality.HIGH}

    def test_floor_when_nothing_fits(self, manifest):
        assignment = UniformAdaptive().assign(manifest, 0, set(), budget_bytes=10)
        assert set(assignment.values()) == {Quality.LOW}


class TestPredictive:
    def test_predicted_high_rest_low(self, manifest):
        predicted = {(0, 0), (0, 1)}
        assignment = PredictiveTilingPolicy().assign(
            manifest, 0, predicted, budget_bytes=2400
        )
        assert assignment[(0, 0)] is Quality.HIGH
        assert assignment[(0, 1)] is Quality.HIGH
        assert assignment[(1, 0)] is Quality.LOW
        assert assignment[(1, 1)] is Quality.LOW

    def test_degrades_predicted_when_over_budget(self, manifest):
        predicted = set(manifest.grid.tiles())  # everything predicted: 4000 B at HIGH
        assignment = PredictiveTilingPolicy().assign(manifest, 0, predicted, budget_bytes=2000)
        assert set(assignment.values()) == {Quality.MEDIUM}

    def test_floor_when_nothing_fits(self, manifest):
        assignment = PredictiveTilingPolicy().assign(
            manifest, 0, set(manifest.grid.tiles()), budget_bytes=1.0
        )
        assert set(assignment.values()) == {Quality.LOW}

    def test_every_tile_assigned(self, manifest):
        assignment = PredictiveTilingPolicy().assign(manifest, 0, {(0, 0)}, budget_bytes=1e9)
        assert set(assignment) == set(manifest.grid.tiles())

    def test_unknown_predicted_tiles_ignored(self, manifest):
        assignment = PredictiveTilingPolicy().assign(
            manifest, 0, {(9, 9)}, budget_bytes=1e9
        )
        assert set(assignment) == set(manifest.grid.tiles())

    def test_custom_rungs(self, manifest):
        policy = PredictiveTilingPolicy(high_rung=1, low_rung=2)
        assignment = policy.assign(manifest, 0, {(0, 0)}, budget_bytes=1e9)
        assert assignment[(0, 0)] is Quality.MEDIUM
        assert assignment[(1, 1)] is Quality.LOW

    def test_rejects_inverted_rungs(self, manifest):
        policy = PredictiveTilingPolicy(high_rung=2, low_rung=0)
        with pytest.raises(ValueError):
            policy.assign(manifest, 0, set(), budget_bytes=1e9)

    def test_infinite_budget_keeps_background_low(self, manifest):
        assignment = PredictiveTilingPolicy().assign(
            manifest, 0, {(0, 0)}, budget_bytes=math.inf
        )
        assert assignment[(1, 1)] is Quality.LOW


class TestEstimateBudget:
    def test_basic(self):
        assert estimate_budget(1000.0, 2.0, safety=0.9) == pytest.approx(1800.0)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            estimate_budget(0.0, 1.0)
        with pytest.raises(ValueError):
            estimate_budget(1.0, 0.0)
        with pytest.raises(ValueError):
            estimate_budget(1.0, 1.0, safety=1.5)
