"""Unit tests for block transforms: splitting, DCT, zigzag."""

import numpy as np
import pytest

from repro.video.blocks import (
    BLOCK_SIZE,
    INVERSE_ZIGZAG,
    ZIGZAG,
    forward_dct,
    inverse_dct,
    merge_blocks,
    split_blocks,
    zigzag_scan,
    zigzag_unscan,
)


class TestSplitMerge:
    def test_round_trip(self):
        plane = np.arange(16 * 24).reshape(16, 24).astype(np.float64)
        blocks = split_blocks(plane)
        assert blocks.shape == (6, 8, 8)
        assert np.array_equal(merge_blocks(blocks, 16, 24), plane)

    def test_block_order_is_row_major(self):
        plane = np.zeros((16, 16))
        plane[0:8, 8:16] = 1.0  # second block in the first block-row
        blocks = split_blocks(plane)
        assert np.all(blocks[1] == 1.0)
        assert np.all(blocks[0] == 0.0)

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            split_blocks(np.zeros((12, 16)))

    def test_merge_validates_shape(self):
        with pytest.raises(ValueError):
            merge_blocks(np.zeros((3, 8, 8)), 16, 16)


class TestDct:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        blocks = rng.uniform(-128, 128, (5, 8, 8))
        back = inverse_dct(forward_dct(blocks))
        assert np.allclose(back, blocks, atol=1e-9)

    def test_constant_block_energy_in_dc(self):
        blocks = np.full((1, 8, 8), 10.0)
        coefficients = forward_dct(blocks)
        assert coefficients[0, 0, 0] == pytest.approx(80.0)  # 10 * 8 (orthonormal)
        assert np.allclose(coefficients[0].flatten()[1:], 0.0, atol=1e-12)

    def test_orthonormal_preserves_energy(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(0, 50, (3, 8, 8))
        coefficients = forward_dct(blocks)
        assert np.sum(blocks**2) == pytest.approx(np.sum(coefficients**2))

    def test_high_frequency_content_lands_high(self):
        x = np.arange(8)
        checker = np.where((x[None, :] + x[:, None]) % 2 == 0, 100.0, -100.0)
        coefficients = forward_dct(checker[None])
        assert abs(coefficients[0, 7, 7]) > abs(coefficients[0, 0, 0])


class TestZigzag:
    def test_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))
        assert np.array_equal(ZIGZAG[INVERSE_ZIGZAG], np.arange(64))

    def test_starts_at_dc_then_first_diagonal(self):
        # (0,0), (0,1), (1,0), (2,0), (1,1), (0,2) ... the JPEG order.
        expected_head = [0, 1, 8, 16, 9, 2]
        assert ZIGZAG[:6].tolist() == expected_head

    def test_scan_round_trip(self):
        rng = np.random.default_rng(2)
        blocks = rng.integers(-50, 50, (4, 8, 8)).astype(np.int32)
        assert np.array_equal(zigzag_unscan(zigzag_scan(blocks)), blocks)

    def test_low_frequency_coefficients_scan_early(self):
        blocks = np.zeros((1, 8, 8))
        blocks[0, 0, 1] = 5.0
        blocks[0, 7, 7] = 9.0
        row = zigzag_scan(blocks)[0]
        assert row[1] == 5.0
        assert row[63] == 9.0

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 8
