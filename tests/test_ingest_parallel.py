"""Wire-format and parallel-ingest guarantees.

The entropy coder is a wire format: stored segments and the homomorphic
tile operators depend on exact bytes. These tests hold the vectorised
coder bit-identical to the scalar reference (the format's executable
specification) and parallel ingest byte-identical to serial.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.storage import IngestConfig, StorageManager
from repro.geometry.grid import TileGrid
from repro.obs import MetricsRegistry
from repro.video import shmem, tiles
from repro.video.bitstream import BitReader, BitWriter
from repro.video.codec import (
    _read_rows,
    _read_rows_reference,
    _write_rows,
    _write_rows_reference,
)
from repro.video.quality import Quality
from repro.video.tiles import TiledVideoCodec, make_encode_executor
from repro.workloads.videos import synthetic_video


def _rng_rows(rng: np.random.Generator, blocks: int, density: float, span: int):
    rows = np.zeros((blocks, 64), dtype=np.int32)
    mask = rng.random((blocks, 64)) < density
    rows[mask] = rng.integers(-span, span + 1, size=int(mask.sum()))
    return rows


class TestEntropyGoldenBytes:
    """Vectorized coder vs the scalar reference, byte for byte."""

    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3, 1.0])
    @pytest.mark.parametrize("span", [1, 40, 3000])
    def test_encode_identical(self, density, span):
        rng = np.random.default_rng(int(density * 100) + span)
        rows = _rng_rows(rng, blocks=37, density=density, span=span)
        vec, ref = BitWriter(), BitWriter()
        _write_rows(vec, rows)
        _write_rows_reference(ref, rows)
        assert vec.getvalue() == ref.getvalue()

    def test_encode_identical_beyond_fused_pair_limit(self):
        # Levels at/above 2**21 take the scalar fallback inside _write_rows;
        # the bytes must still match the reference exactly.
        rows = np.zeros((4, 64), dtype=np.int32)
        rows[0, 0] = 1 << 21
        rows[1, 5] = -(1 << 21)
        rows[2, 63] = (1 << 22) + 17
        vec, ref = BitWriter(), BitWriter()
        _write_rows(vec, rows)
        _write_rows_reference(ref, rows)
        assert vec.getvalue() == ref.getvalue()

    def test_encode_identical_mid_byte_continuation(self):
        # Planes share one continuous stream: the second plane starts at a
        # non-byte-aligned position. The vectorized writer must fold the
        # pending partial byte in correctly.
        rng = np.random.default_rng(7)
        plane_a = _rng_rows(rng, blocks=5, density=0.4, span=25)
        plane_b = _rng_rows(rng, blocks=11, density=0.1, span=500)
        vec, ref = BitWriter(), BitWriter()
        for writer, write in ((vec, _write_rows), (ref, _write_rows_reference)):
            write(writer, plane_a)
            write(writer, plane_b)
        assert vec.getvalue() == ref.getvalue()

    @pytest.mark.parametrize("density", [0.05, 0.6])
    def test_decode_identical(self, density):
        rng = np.random.default_rng(13)
        rows = _rng_rows(rng, blocks=29, density=density, span=900)
        writer = BitWriter()
        _write_rows_reference(writer, rows)
        payload = writer.getvalue()
        got_vec = _read_rows(BitReader(payload), rows.shape[0])
        got_ref = _read_rows_reference(BitReader(payload), rows.shape[0])
        np.testing.assert_array_equal(got_vec, got_ref)
        np.testing.assert_array_equal(got_vec, rows)

    @given(
        blocks=st.integers(min_value=0, max_value=24),
        density=st.floats(min_value=0.0, max_value=1.0),
        span=st.integers(min_value=1, max_value=1 << 22),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, blocks, density, span, seed):
        """Any quantised rows survive encode -> decode bit-exactly."""
        rng = np.random.default_rng(seed)
        rows = _rng_rows(rng, blocks=blocks, density=density, span=span)
        vec, ref = BitWriter(), BitWriter()
        _write_rows(vec, rows)
        _write_rows_reference(ref, rows)
        payload = vec.getvalue()
        assert payload == ref.getvalue()
        decoded = _read_rows(BitReader(payload), blocks)
        np.testing.assert_array_equal(decoded, rows)


CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH, Quality.LOW),
    gop_frames=4,
    fps=4.0,
    workers=1,
)


def _segment_files(root) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestParallelIngestByteIdentity:
    def _frames(self):
        return list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=3)
        )

    def test_parallel_matches_serial(self, tmp_path):
        """workers=2 must write exactly the bytes workers=1 writes."""
        frames = self._frames()
        serial_root = tmp_path / "serial"
        parallel_root = tmp_path / "parallel"
        StorageManager(serial_root).ingest("clip", iter(frames), CONFIG, workers=1)
        StorageManager(parallel_root).ingest("clip", iter(frames), CONFIG, workers=2)
        serial_files = _segment_files(serial_root)
        parallel_files = _segment_files(parallel_root)
        assert serial_files.keys() == parallel_files.keys()
        assert serial_files == parallel_files

    def test_encode_gop_mixed_parallel_matches_serial(self, tiny_frames):
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        plan = {
            tile: (Quality.HIGH if tile[0] == 0 else Quality.LOW)
            for tile in codec.grid.tiles()
        }
        serial = codec.encode_gop_mixed(tiny_frames, plan, workers=1)
        parallel = codec.encode_gop_mixed(tiny_frames, plan, workers=2)
        assert serial.payloads.keys() == parallel.payloads.keys()
        for key in serial.payloads:
            assert serial.payloads[key] == parallel.payloads[key], f"tile {key} differs"

    def test_workers_default_resolves_to_cpu_count(self):
        import os

        assert IngestConfig().workers == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            IngestConfig(workers=0)


def _shm_blocks() -> list[str]:
    """Shared-memory blocks this process has published and not reclaimed."""
    import os

    shm_dir = Path("/dev/shm")
    if not shm_dir.exists():
        return []
    prefix = f"{shmem.BLOCK_PREFIX}-{os.getpid()}-"
    return sorted(path.name for path in shm_dir.iterdir() if path.name.startswith(prefix))


needs_shm = pytest.mark.skipif(
    not shmem.shared_memory_available(), reason="platform has no shared memory"
)


@pytest.fixture(scope="module")
def shared_pool():
    """One 2-worker pool for the whole module (forkserver warmup paid once)."""
    pool = make_encode_executor(2, 32)
    if pool is None:
        pytest.skip("platform cannot start encode worker pools")
    yield pool
    pool.shutdown()


class TestSharedMemoryTransport:
    """The shm frame transport: equality, lifecycle, and fallback."""

    @needs_shm
    def test_round_trip_equals_crop(self, tiny_frames):
        published = shmem.publish_gop(tiny_frames)
        try:
            got = shmem.read_tile_frames(published.descriptor, (16, 8, 48, 24))
        finally:
            published.destroy()
        expected = [frame.crop(16, 8, 48, 24) for frame in tiny_frames]
        assert len(got) == len(expected)
        for mine, theirs in zip(got, expected):
            assert mine.equals(theirs)

    @needs_shm
    def test_full_frame_rect_copies_out_of_the_mapping(self, tiny_frames):
        # A full-frame rect slices contiguously — the one case where a
        # lazy ascontiguousarray would alias the closed mapping.
        frame = tiny_frames[0]
        published = shmem.publish_gop(tiny_frames)
        try:
            got = shmem.read_tile_frames(
                published.descriptor, (0, 0, frame.width, frame.height)
            )
        finally:
            published.destroy()
        # The mapping is gone; the frames must still be readable.
        assert _shm_blocks() == []
        for mine, theirs in zip(got, tiny_frames):
            assert mine.equals(theirs)

    @needs_shm
    def test_destroy_is_idempotent_and_unlinks(self, tiny_frames):
        published = shmem.publish_gop(tiny_frames)
        assert _shm_blocks() != []
        published.destroy()
        published.destroy()
        assert _shm_blocks() == []

    @needs_shm
    def test_worker_failure_unlinks_block(self, tiny_frames, shared_pool):
        # THUMBNAIL encodes at half resolution, which a 16px-wide tile
        # cannot satisfy: the job raises *inside the worker*, and the
        # publisher's finally must still reclaim the block.
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        ladders = {tile: (Quality.THUMBNAIL,) for tile in codec.grid.tiles()}
        with pytest.raises(ValueError, match="resolution"):
            codec.encode_gop_ladders(
                tiny_frames, ladders, executor=shared_pool, transport="shm"
            )
        assert _shm_blocks() == []

    @needs_shm
    def test_keyboard_interrupt_unlinks_block(self, tiny_frames):
        class InterruptingExecutor:
            _max_workers = 2

            def map(self, fn, jobs, chunksize=1):
                raise KeyboardInterrupt

        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        ladders = {tile: (Quality.LOW,) for tile in codec.grid.tiles()}
        with pytest.raises(KeyboardInterrupt):
            codec.encode_gop_ladders(
                tiny_frames, ladders, executor=InterruptingExecutor(), transport="shm"
            )
        assert _shm_blocks() == []

    @needs_shm
    def test_failed_ingest_leaves_no_blocks(self, tmp_path, monkeypatch):
        from repro.core.catalog import Catalog

        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=3)
        )
        storage = StorageManager(tmp_path)
        real = Catalog.segment_path
        calls = {"n": 0}

        def failing_segment_path(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("disk on fire")
            return real(self, *args, **kwargs)

        monkeypatch.setattr(Catalog, "segment_path", failing_segment_path)
        with pytest.raises(RuntimeError, match="disk on fire"):
            storage.ingest(
                "clip",
                iter(frames),
                IngestConfig(
                    grid=TileGrid(2, 2),
                    qualities=(Quality.HIGH, Quality.LOW),
                    gop_frames=4,
                    fps=4.0,
                    workers=2,
                    transport="shm",
                ),
            )
        assert not storage.exists("clip")
        assert _shm_blocks() == []

    def test_pickle_fallback_when_shm_unavailable(self, tiny_frames, monkeypatch):
        monkeypatch.setattr(tiles, "shared_memory_available", lambda: False)
        registry = MetricsRegistry()
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        ladders = {tile: (Quality.HIGH, Quality.LOW) for tile in codec.grid.tiles()}
        serial = codec.encode_gop_ladders(tiny_frames, ladders)

        class InlineExecutor:
            _max_workers = 2

            def map(self, fn, jobs, chunksize=1):
                return map(fn, list(jobs))

        with pytest.warns(RuntimeWarning, match="falling back to the pickling"):
            parallel = codec.encode_gop_ladders(
                tiny_frames,
                ladders,
                executor=InlineExecutor(),
                transport="shm",
                registry=registry,
            )
        assert parallel == serial
        counters = registry.snapshot()["counters"]
        assert counters["ingest.shm_fallback"] == 1
        assert counters["ingest.pickled_gops"] == 1

    @needs_shm
    def test_pickle_fallback_when_publish_fails(self, tiny_frames, monkeypatch):
        def refuse(frames):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(tiles, "publish_gop", refuse)
        registry = MetricsRegistry()
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        ladders = {tile: (Quality.LOW,) for tile in codec.grid.tiles()}
        serial = codec.encode_gop_ladders(tiny_frames, ladders)

        class InlineExecutor:
            _max_workers = 2

            def map(self, fn, jobs, chunksize=1):
                return map(fn, list(jobs))

        parallel = codec.encode_gop_ladders(
            tiny_frames,
            ladders,
            executor=InlineExecutor(),
            transport="auto",
            registry=registry,
        )
        assert parallel == serial
        assert registry.snapshot()["counters"]["ingest.shm_fallback"] == 1
        assert _shm_blocks() == []


class TestPoolFallbackIsLoud:
    def test_refused_pool_warns_and_counts(self, monkeypatch):
        registry = MetricsRegistry()

        def refuse(*args, **kwargs):
            raise OSError("spawn forbidden")

        monkeypatch.setattr(tiles, "ProcessPoolExecutor", refuse)
        with pytest.warns(RuntimeWarning, match="refused"):
            assert make_encode_executor(8, 32, registry=registry) is None
        assert registry.snapshot()["counters"]["ingest.pool_fallback"] == 1

    def test_deliberate_serial_stays_quiet(self):
        registry = MetricsRegistry()
        assert make_encode_executor(1, 32, registry=registry) is None
        assert make_encode_executor(4, 1, registry=registry) is None
        assert "ingest.pool_fallback" not in registry.snapshot()["counters"]


class TestDispatchChunking:
    def test_chunksize_follows_executor_not_workers_param(self):
        """A shared pool sized 2 must not be chunked as if it had 16 workers."""

        class RecordingExecutor:
            def __init__(self, max_workers):
                self._max_workers = max_workers
                self.chunksizes = []

            def map(self, fn, jobs, chunksize=1):
                self.chunksizes.append(chunksize)
                return map(fn, list(jobs))

        frames = list(
            synthetic_video("venice", width=128, height=64, fps=4.0, duration=0.5, seed=1)
        )
        codec = TiledVideoCodec(TileGrid(4, 4), 128, 64)
        ladders = {tile: (Quality.LOW,) for tile in codec.grid.tiles()}
        executor = RecordingExecutor(max_workers=2)
        codec.encode_gop_ladders(
            frames, ladders, workers=16, executor=executor, transport="pickle"
        )
        # 16 jobs over 2 actual workers -> 4 chunks per worker -> 2 jobs
        # per chunk. The workers=16 parameter must not shrink this to 1.
        assert executor.chunksizes == [2]

    def test_chunksize_helper_floors_at_one(self):
        class Pool:
            _max_workers = 8

        assert tiles._dispatch_chunksize(3, Pool(), workers=1) == 1
        assert tiles._dispatch_chunksize(64, Pool(), workers=1) == 2


class TestLadderEncodeByteIdentity:
    """encode_gop_ladders across transports, against the serial oracle."""

    @needs_shm
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        ladder_picks=st.lists(
            st.sampled_from(
                [
                    (Quality.HIGH,),
                    (Quality.LOW,),
                    (Quality.HIGH, Quality.LOW),
                    (Quality.HIGH, Quality.MEDIUM, Quality.LOWEST),
                ]
            ),
            min_size=4,
            max_size=4,
        ),
    )
    @settings(max_examples=8, deadline=None)
    def test_shm_parallel_matches_serial_property(self, seed, ladder_picks, shared_pool):
        frames = list(
            synthetic_video(
                "venice", width=64, height=32, fps=4.0, duration=0.75, seed=seed
            )
        )
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        ladders = dict(zip(codec.grid.tiles(), ladder_picks))
        serial = codec.encode_gop_ladders(frames, ladders)
        parallel = codec.encode_gop_ladders(
            frames, ladders, executor=shared_pool, transport="shm"
        )
        assert parallel == serial
        assert _shm_blocks() == []

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_ingest_transports_match_serial(self, tmp_path, transport):
        if transport == "shm" and not shmem.shared_memory_available():
            pytest.skip("platform has no shared memory")
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=3)
        )
        plan = {
            (0, 0): (Quality.LOW,),
            (1, 1): (Quality.HIGH,),
        }
        roots = {}
        for label, workers in (("serial", 1), ("parallel", 2)):
            root = tmp_path / f"{label}-{transport}"
            config = IngestConfig(
                grid=TileGrid(2, 2),
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=4,
                fps=4.0,
                workers=workers,
                transport=transport,
            )
            storage = StorageManager(root)
            storage.ingest("clip", iter(frames), config, quality_plan=plan)
            roots[label] = root
            if label == "parallel":
                counters = storage.metrics.snapshot()["counters"]
                expected = "ingest.shm_gops" if transport == "shm" else "ingest.pickled_gops"
                assert counters.get(expected, 0) > 0, "requested transport never engaged"
        assert _segment_files(roots["serial"]) == _segment_files(roots["parallel"])
        assert _shm_blocks() == []

    @needs_shm
    def test_reingest_parallel_shm_matches_serial(self, tmp_path):
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=5)
        )
        metas = {}
        for label, workers in (("serial", 1), ("parallel", 2)):
            root = tmp_path / label
            storage = StorageManager(root)
            storage.ingest("clip", iter(frames), CONFIG)
            metas[label] = storage.reingest(
                "clip", workers=workers, transport="shm" if workers > 1 else "auto"
            )
        assert metas["serial"].version == metas["parallel"].version == 2
        serial_files = _segment_files(tmp_path / "serial")
        parallel_files = _segment_files(tmp_path / "parallel")
        assert serial_files == parallel_files
        assert _shm_blocks() == []


class TestReingest:
    def test_reingest_creates_new_version(self, tmp_path):
        storage = StorageManager(tmp_path)
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=5)
        )
        storage.ingest("clip", iter(frames), CONFIG)
        meta = storage.reingest("clip", workers=1)
        assert meta.version == 2
        assert meta.gop_count == storage.meta("clip", 1).gop_count

    def test_reingest_can_change_grid(self, tmp_path):
        storage = StorageManager(tmp_path)
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=5)
        )
        storage.ingest("clip", iter(frames), CONFIG)
        new_config = IngestConfig(
            grid=TileGrid(1, 2),
            qualities=(Quality.HIGH,),
            gop_frames=4,
            fps=4.0,
            workers=1,
        )
        meta = storage.reingest("clip", config=new_config)
        assert meta.grid == TileGrid(1, 2)
        assert set(meta.qualities) == {Quality.HIGH}
