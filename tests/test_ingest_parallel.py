"""Wire-format and parallel-ingest guarantees.

The entropy coder is a wire format: stored segments and the homomorphic
tile operators depend on exact bytes. These tests hold the vectorised
coder bit-identical to the scalar reference (the format's executable
specification) and parallel ingest byte-identical to serial.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.storage import IngestConfig, StorageManager
from repro.geometry.grid import TileGrid
from repro.video.bitstream import BitReader, BitWriter
from repro.video.codec import (
    _read_rows,
    _read_rows_reference,
    _write_rows,
    _write_rows_reference,
)
from repro.video.quality import Quality
from repro.video.tiles import TiledVideoCodec
from repro.workloads.videos import synthetic_video


def _rng_rows(rng: np.random.Generator, blocks: int, density: float, span: int):
    rows = np.zeros((blocks, 64), dtype=np.int32)
    mask = rng.random((blocks, 64)) < density
    rows[mask] = rng.integers(-span, span + 1, size=int(mask.sum()))
    return rows


class TestEntropyGoldenBytes:
    """Vectorized coder vs the scalar reference, byte for byte."""

    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3, 1.0])
    @pytest.mark.parametrize("span", [1, 40, 3000])
    def test_encode_identical(self, density, span):
        rng = np.random.default_rng(int(density * 100) + span)
        rows = _rng_rows(rng, blocks=37, density=density, span=span)
        vec, ref = BitWriter(), BitWriter()
        _write_rows(vec, rows)
        _write_rows_reference(ref, rows)
        assert vec.getvalue() == ref.getvalue()

    def test_encode_identical_beyond_fused_pair_limit(self):
        # Levels at/above 2**21 take the scalar fallback inside _write_rows;
        # the bytes must still match the reference exactly.
        rows = np.zeros((4, 64), dtype=np.int32)
        rows[0, 0] = 1 << 21
        rows[1, 5] = -(1 << 21)
        rows[2, 63] = (1 << 22) + 17
        vec, ref = BitWriter(), BitWriter()
        _write_rows(vec, rows)
        _write_rows_reference(ref, rows)
        assert vec.getvalue() == ref.getvalue()

    def test_encode_identical_mid_byte_continuation(self):
        # Planes share one continuous stream: the second plane starts at a
        # non-byte-aligned position. The vectorized writer must fold the
        # pending partial byte in correctly.
        rng = np.random.default_rng(7)
        plane_a = _rng_rows(rng, blocks=5, density=0.4, span=25)
        plane_b = _rng_rows(rng, blocks=11, density=0.1, span=500)
        vec, ref = BitWriter(), BitWriter()
        for writer, write in ((vec, _write_rows), (ref, _write_rows_reference)):
            write(writer, plane_a)
            write(writer, plane_b)
        assert vec.getvalue() == ref.getvalue()

    @pytest.mark.parametrize("density", [0.05, 0.6])
    def test_decode_identical(self, density):
        rng = np.random.default_rng(13)
        rows = _rng_rows(rng, blocks=29, density=density, span=900)
        writer = BitWriter()
        _write_rows_reference(writer, rows)
        payload = writer.getvalue()
        got_vec = _read_rows(BitReader(payload), rows.shape[0])
        got_ref = _read_rows_reference(BitReader(payload), rows.shape[0])
        np.testing.assert_array_equal(got_vec, got_ref)
        np.testing.assert_array_equal(got_vec, rows)

    @given(
        blocks=st.integers(min_value=0, max_value=24),
        density=st.floats(min_value=0.0, max_value=1.0),
        span=st.integers(min_value=1, max_value=1 << 22),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, blocks, density, span, seed):
        """Any quantised rows survive encode -> decode bit-exactly."""
        rng = np.random.default_rng(seed)
        rows = _rng_rows(rng, blocks=blocks, density=density, span=span)
        vec, ref = BitWriter(), BitWriter()
        _write_rows(vec, rows)
        _write_rows_reference(ref, rows)
        payload = vec.getvalue()
        assert payload == ref.getvalue()
        decoded = _read_rows(BitReader(payload), blocks)
        np.testing.assert_array_equal(decoded, rows)


CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH, Quality.LOW),
    gop_frames=4,
    fps=4.0,
    workers=1,
)


def _segment_files(root) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestParallelIngestByteIdentity:
    def _frames(self):
        return list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=3)
        )

    def test_parallel_matches_serial(self, tmp_path):
        """workers=2 must write exactly the bytes workers=1 writes."""
        frames = self._frames()
        serial_root = tmp_path / "serial"
        parallel_root = tmp_path / "parallel"
        StorageManager(serial_root).ingest("clip", iter(frames), CONFIG, workers=1)
        StorageManager(parallel_root).ingest("clip", iter(frames), CONFIG, workers=2)
        serial_files = _segment_files(serial_root)
        parallel_files = _segment_files(parallel_root)
        assert serial_files.keys() == parallel_files.keys()
        assert serial_files == parallel_files

    def test_encode_gop_mixed_parallel_matches_serial(self, tiny_frames):
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        plan = {
            tile: (Quality.HIGH if tile[0] == 0 else Quality.LOW)
            for tile in codec.grid.tiles()
        }
        serial = codec.encode_gop_mixed(tiny_frames, plan, workers=1)
        parallel = codec.encode_gop_mixed(tiny_frames, plan, workers=2)
        assert serial.payloads.keys() == parallel.payloads.keys()
        for key in serial.payloads:
            assert serial.payloads[key] == parallel.payloads[key], f"tile {key} differs"

    def test_workers_default_resolves_to_cpu_count(self):
        import os

        assert IngestConfig().workers == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            IngestConfig(workers=0)


class TestReingest:
    def test_reingest_creates_new_version(self, tmp_path):
        storage = StorageManager(tmp_path)
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=5)
        )
        storage.ingest("clip", iter(frames), CONFIG)
        meta = storage.reingest("clip", workers=1)
        assert meta.version == 2
        assert meta.gop_count == storage.meta("clip", 1).gop_count

    def test_reingest_can_change_grid(self, tmp_path):
        storage = StorageManager(tmp_path)
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.0, seed=5)
        )
        storage.ingest("clip", iter(frames), CONFIG)
        new_config = IngestConfig(
            grid=TileGrid(1, 2),
            qualities=(Quality.HIGH,),
            gop_frames=4,
            fps=4.0,
            workers=1,
        )
        meta = storage.reingest("clip", config=new_config)
        assert meta.grid == TileGrid(1, 2)
        assert set(meta.qualities) == {Quality.HIGH}
