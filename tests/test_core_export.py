"""Tests for single-file export/import."""

import pytest

from repro import IngestConfig, Quality, TileGrid
from repro.core.errors import CatalogError
from repro.core.export import decode_export, export_video, import_video, read_export
from repro.video.frame import psnr
from repro.workloads.videos import synthetic_video

CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH, Quality.LOW),
    gop_frames=4,
    fps=4.0,
)


@pytest.fixture()
def loaded(db):
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=2, seed=8)
    db.ingest("clip", frames, CONFIG)
    return db


class TestExport:
    def test_export_writes_parseable_file(self, loaded, tmp_path):
        target = tmp_path / "clip.mp4"
        written = export_video(loaded.storage, "clip", target)
        assert written == target.stat().st_size
        info, windows = read_export(target)
        assert info["codec"] == "vctg"
        assert info["width"] == 64
        assert info["quality"] == "high"
        assert info["duration"] == pytest.approx(2.0)
        assert len(windows) == 2

    def test_export_specific_quality(self, loaded, tmp_path):
        high = export_video(loaded.storage, "clip", tmp_path / "h.mp4", Quality.HIGH)
        low = export_video(loaded.storage, "clip", tmp_path / "l.mp4", Quality.LOW)
        assert low < high

    def test_decode_export_fidelity(self, loaded, tmp_path):
        target = tmp_path / "clip.mp4"
        export_video(loaded.storage, "clip", target)
        decoded = decode_export(target)
        assert len(decoded) == 8
        reference = loaded.storage.decode_window("clip", 0, Quality.HIGH)
        assert decoded[0].equals(reference[0])

    def test_round_trip_through_import(self, loaded, tmp_path):
        target = tmp_path / "clip.mp4"
        export_video(loaded.storage, "clip", target)
        meta = import_video(loaded.storage, "copy", target)
        assert meta.gop_count == 2
        original = loaded.storage.decode_window("clip", 1, Quality.HIGH)
        imported = loaded.storage.decode_window("copy", 1, Quality.HIGH)
        assert original[0].equals(imported[0])  # stored bytes, no transcode

    def test_import_bad_file(self, loaded, tmp_path):
        bad = tmp_path / "bad.mp4"
        bad.write_bytes(b"\x00\x00\x00\x08free")
        with pytest.raises(CatalogError):
            import_video(loaded.storage, "x", bad)

    def test_import_missing_atoms(self, loaded, tmp_path):
        from repro.video.mp4 import Atom, Mp4File

        half = tmp_path / "half.mp4"
        half.write_bytes(
            Mp4File(
                atoms=[Atom("moov", children=[]), Atom("mdat", payload=b"")]
            ).serialize()
        )
        with pytest.raises(CatalogError):
            read_export(half)
