"""Unit tests for the built-in MAP UDFs."""

import numpy as np
import pytest

from repro.core import udfs
from repro.video.frame import Frame


@pytest.fixture()
def frame() -> Frame:
    rng = np.random.default_rng(0)
    rgb = rng.integers(0, 255, (16, 32, 3), dtype=np.uint8).astype(np.uint8)
    return Frame.from_rgb(rgb)


class TestGrayscale:
    def test_neutral_chroma(self, frame):
        gray = udfs.grayscale(frame)
        assert np.all(gray.u == 128)
        assert np.all(gray.v == 128)

    def test_luma_untouched(self, frame):
        assert np.array_equal(udfs.grayscale(frame).y, frame.y)


class TestInvert:
    def test_involution(self, frame):
        assert udfs.invert(udfs.invert(frame)).equals(frame)

    def test_inverts_luma(self, frame):
        assert np.array_equal(udfs.invert(frame).y, 255 - frame.y)


class TestBrighten:
    def test_shifts_luma(self):
        frame = Frame.blank(16, 16, luma=100)
        assert np.all(udfs.brighten(32)(frame).y == 132)

    def test_clamps(self):
        frame = Frame.blank(16, 16, luma=250)
        assert np.all(udfs.brighten(32)(frame).y == 255)

    def test_chroma_untouched(self, frame):
        bright = udfs.brighten(10)(frame)
        assert np.array_equal(bright.u, frame.u)

    def test_factory_names(self):
        assert udfs.brighten(5).__name__ == "brighten_5"


class TestConvolutions:
    def test_blur_flattens_noise(self, frame):
        blurred = udfs.blur(frame)
        assert np.std(blurred.y.astype(float)) < np.std(frame.y.astype(float))

    def test_blur_preserves_constant(self):
        frame = Frame.blank(16, 16, luma=77)
        assert np.all(udfs.blur(frame).y == 77)

    def test_sharpen_preserves_constant(self):
        frame = Frame.blank(16, 16, luma=77)
        assert np.all(udfs.sharpen(frame).y == 77)

    def test_sharpen_amplifies_edges(self):
        luma = np.zeros((16, 16), dtype=np.uint8)
        luma[:, 8:] = 100
        frame = Frame.from_luma(luma)
        sharpened = udfs.sharpen(frame)
        edge_contrast = int(sharpened.y[8, 8]) - int(sharpened.y[8, 7])
        assert edge_contrast > 100

    def test_shapes_preserved(self, frame):
        for udf in (udfs.blur, udfs.sharpen):
            out = udf(frame)
            assert (out.width, out.height) == (frame.width, frame.height)


class TestWatermark:
    def test_stamps_patch(self):
        frame = Frame.blank(32, 16, luma=0)
        mark = np.full((4, 8), 255, dtype=np.uint8)
        stamped = udfs.watermark(mark, x0=8, y0=4)(frame)
        assert np.all(stamped.y[4:8, 8:16] == 255)
        assert stamped.y[0, 0] == 0

    def test_rejects_odd_offset(self):
        frame = Frame.blank(32, 16)
        with pytest.raises(ValueError):
            udfs.watermark(np.zeros((4, 4), dtype=np.uint8), x0=1)(frame)
