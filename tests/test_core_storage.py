"""Unit and integration tests for the storage manager."""

import pytest

from repro.core.errors import CatalogError, IngestError, SegmentNotFoundError
from repro.core.storage import IngestConfig, StorageManager
from repro.geometry.grid import TileGrid
from repro.video.frame import psnr
from repro.video.quality import Quality
from repro.video.tiles import TiledVideoCodec
from repro.workloads.videos import checkerboard_video, synthetic_video


CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH, Quality.LOW),
    gop_frames=4,
    fps=4.0,
)


@pytest.fixture()
def storage(tmp_path) -> StorageManager:
    return StorageManager(tmp_path)


@pytest.fixture()
def loaded(storage) -> StorageManager:
    frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=3.0, seed=1)
    storage.ingest("clip", frames, CONFIG)
    return storage


class TestIngestConfig:
    def test_defaults_are_valid(self):
        IngestConfig()

    def test_rejects_bad_gop(self):
        with pytest.raises(ValueError):
            IngestConfig(gop_frames=0)

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            IngestConfig(fps=0.0)

    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            IngestConfig(qualities=())

    def test_rejects_misordered_ladder(self):
        with pytest.raises(ValueError):
            IngestConfig(qualities=(Quality.LOW, Quality.HIGH))

    def test_gop_duration(self):
        assert IngestConfig(gop_frames=15, fps=30.0).gop_duration == pytest.approx(0.5)


class TestIngest:
    def test_meta_shape(self, loaded):
        meta = loaded.meta("clip")
        assert meta.version == 1
        assert meta.gop_count == 3
        assert meta.gop_frame_counts == [4, 4, 4]
        assert meta.duration == pytest.approx(3.0)
        assert meta.qualities == (Quality.HIGH, Quality.LOW)

    def test_every_segment_indexed(self, loaded):
        meta = loaded.meta("clip")
        assert len(meta.entries) == 3 * 4 * 2  # gops x tiles x qualities

    def test_partial_final_gop(self, storage):
        frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.5, seed=1)
        meta = storage.ingest("clip", frames, CONFIG)
        assert meta.gop_frame_counts == [4, 4, 2]
        assert meta.duration == pytest.approx(2.5)

    def test_empty_source_rejected_and_rolled_back(self, storage):
        with pytest.raises(IngestError):
            storage.ingest("clip", iter([]), CONFIG)
        assert not storage.exists("clip")

    def test_duplicate_name_rejected(self, loaded):
        with pytest.raises(CatalogError):
            loaded.ingest("clip", iter([]), CONFIG)

    def test_low_quality_smaller_than_high(self, loaded):
        meta = loaded.meta("clip")
        high = sum(e.size for (g, t, q), e in meta.entries.items() if q is Quality.HIGH)
        low = sum(e.size for (g, t, q), e in meta.entries.items() if q is Quality.LOW)
        assert low < high / 2


class TestMetadataRoundTrip:
    def test_parse_from_disk_matches(self, loaded):
        in_memory = loaded.meta("clip")
        loaded._meta_cache.clear()
        from_disk = loaded.meta("clip")
        assert from_disk.entries == in_memory.entries
        assert from_disk.gop_frame_counts == in_memory.gop_frame_counts
        assert from_disk.qualities == in_memory.qualities
        assert from_disk.grid == in_memory.grid
        assert from_disk.fps == in_memory.fps
        assert from_disk.projection == in_memory.projection

    def test_missing_version(self, loaded):
        with pytest.raises(CatalogError):
            loaded.meta("clip", version=9)


class TestReads:
    def test_read_segment_round_trips(self, loaded):
        data = loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        from repro.video.gop import decode_any_gop

        frames = decode_any_gop(data)
        assert len(frames) == 4

    def test_read_segment_missing(self, loaded):
        with pytest.raises(SegmentNotFoundError):
            loaded.read_segment("clip", 9, (0, 0), Quality.HIGH)

    def test_read_window_mixed_quality(self, loaded):
        quality_map = {tile: Quality.LOW for tile in TileGrid(2, 2).tiles()}
        quality_map[(0, 0)] = Quality.HIGH
        window = loaded.read_window("clip", 1, quality_map)
        assert window.tile_quality(0, 0) is Quality.HIGH
        assert window.tile_quality(1, 1) is Quality.LOW
        assert window.frame_count == 4

    def test_decode_window_fidelity(self, storage):
        frames = checkerboard_video(width=64, height=32, frames=4)
        storage.ingest("board", iter(frames), CONFIG)
        decoded = storage.decode_window("board", 0, Quality.HIGH)
        assert psnr(frames[0], decoded[0]) > 30

    def test_gops_overlapping(self, loaded):
        meta = loaded.meta("clip")
        assert meta.gops_overlapping(0.0, 3.0) == [0, 1, 2]
        assert meta.gops_overlapping(1.2, 1.8) == [1]
        assert meta.gops_overlapping(0.9, 1.1) == [0, 1]

    def test_gops_overlapping_empty_range(self, loaded):
        with pytest.raises(ValueError):
            loaded.meta("clip").gops_overlapping(2.0, 2.0)

    def test_total_bytes_matches_index(self, loaded):
        meta = loaded.meta("clip")
        assert loaded.total_bytes("clip") == sum(e.size for e in meta.entries.values())


class TestAppend:
    def test_append_creates_new_version(self, loaded):
        more = synthetic_video("venice", width=64, height=32, fps=4.0, duration=1.0, seed=2)
        meta = loaded.append("clip", more)
        assert meta.version == 2
        assert meta.gop_count == 4
        assert meta.streaming is True

    def test_old_version_still_readable(self, loaded):
        more = synthetic_video("venice", width=64, height=32, fps=4.0, duration=1.0, seed=2)
        loaded.append("clip", more)
        old = loaded.meta("clip", version=1)
        assert old.gop_count == 3
        assert loaded.read_segment("clip", 0, (0, 0), Quality.HIGH, version=1)

    def test_appended_segments_share_old_files(self, loaded):
        more = synthetic_video("venice", width=64, height=32, fps=4.0, duration=1.0, seed=2)
        meta = loaded.append("clip", more)
        assert meta.entries[(0, (0, 0), Quality.HIGH)].file_version == 1
        assert meta.entries[(3, (0, 0), Quality.HIGH)].file_version == 2

    def test_append_to_partial_gop_rejected(self, storage):
        frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=2.5, seed=1)
        storage.ingest("clip", frames, CONFIG)
        with pytest.raises(IngestError):
            storage.append("clip", checkerboard_video(64, 32, 4))

    def test_append_wrong_dimensions(self, loaded):
        with pytest.raises(IngestError):
            loaded.append("clip", checkerboard_video(width=32, height=32, frames=4))


class TestStoreWindows:
    def test_store_encoded_windows(self, storage):
        frames = checkerboard_video(width=64, height=32, frames=8)
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        windows = [
            codec.encode_gop(frames[:4], Quality.HIGH),
            codec.encode_gop(frames[4:], Quality.HIGH),
        ]
        meta = storage.store_windows("result", windows, fps=4.0)
        assert meta.version == 1
        assert meta.gop_count == 2
        assert storage.read_segment("result", 0, (0, 0), Quality.HIGH)

    def test_store_over_existing_makes_version(self, loaded):
        window = loaded.read_window(
            "clip", 0, {tile: Quality.HIGH for tile in TileGrid(2, 2).tiles()}
        )
        meta = loaded.store_windows("clip", [window], fps=4.0)
        assert meta.version == 2
        assert loaded.catalog.latest_version("clip") == 2

    def test_store_rejects_empty(self, storage):
        with pytest.raises(IngestError):
            storage.store_windows("x", [], fps=4.0)

    def test_store_rejects_mixed_layouts(self, storage):
        frames = checkerboard_video(width=64, height=32, frames=4)
        a = TiledVideoCodec(TileGrid(2, 2), 64, 32).encode_gop(frames, Quality.HIGH)
        b = TiledVideoCodec(TileGrid(1, 1), 64, 32).encode_gop(frames, Quality.HIGH)
        with pytest.raises(IngestError):
            storage.store_windows("x", [a, b], fps=4.0)

    def test_metadata_never_overwritten(self, loaded):
        meta = loaded.meta("clip")
        with pytest.raises(CatalogError):
            loaded._commit_meta(meta)  # same version again


class TestManifest:
    def test_manifest_matches_meta(self, loaded):
        manifest = loaded.build_manifest("clip")
        meta = loaded.meta("clip")
        assert manifest.window_count == meta.gop_count
        assert manifest.grid == meta.grid
        assert manifest.qualities == meta.qualities
        assert len(manifest.segment_sizes) == len(meta.entries)

    def test_manifest_sizes_are_real_file_sizes(self, loaded):
        manifest = loaded.build_manifest("clip")
        from repro.stream.dash import SegmentKey

        key = SegmentKey(0, (0, 0), Quality.HIGH)
        assert manifest.segment_sizes[key] == len(
            loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        )

    def test_incomplete_ladder_not_servable(self, storage):
        frames = checkerboard_video(width=64, height=32, frames=4)
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        window = codec.encode_gop(frames, Quality.HIGH, tiles={(0, 0)})
        storage.store_windows("partial", [window], fps=4.0)
        with pytest.raises(SegmentNotFoundError):
            storage.build_manifest("partial")


class TestDrop:
    def test_drop_clears_cache_and_disk(self, loaded):
        loaded.drop("clip")
        assert not loaded.exists("clip")
        with pytest.raises(CatalogError):
            loaded.meta("clip")
