"""Unit tests for DASH-style manifests."""

import pytest

from repro.geometry.grid import TileGrid
from repro.stream.dash import Manifest, SegmentKey
from repro.video.quality import Quality


def make_manifest(windows=3, grid=TileGrid(2, 2), qualities=(Quality.HIGH, Quality.LOW)):
    sizes = {}
    for window in range(windows):
        for tile in grid.tiles():
            for quality in qualities:
                base = 1000 if quality is Quality.HIGH else 200
                sizes[SegmentKey(window, tile, quality)] = base + window
    return Manifest(
        video="demo",
        width=64,
        height=32,
        fps=30.0,
        window_duration=1.0,
        window_count=windows,
        grid=grid,
        qualities=qualities,
        segment_sizes=sizes,
    )


class TestValidation:
    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            Manifest(
                video="x",
                width=64,
                height=32,
                fps=30,
                window_duration=0.0,
                window_count=1,
                grid=TileGrid(1, 1),
                qualities=(Quality.HIGH,),
            )

    def test_rejects_zero_windows(self):
        with pytest.raises(ValueError):
            Manifest(
                video="x",
                width=64,
                height=32,
                fps=30,
                window_duration=1.0,
                window_count=0,
                grid=TileGrid(1, 1),
                qualities=(Quality.HIGH,),
            )

    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            Manifest(
                video="x",
                width=64,
                height=32,
                fps=30,
                window_duration=1.0,
                window_count=1,
                grid=TileGrid(1, 1),
                qualities=(),
            )

    def test_rejects_misordered_ladder(self):
        with pytest.raises(ValueError):
            Manifest(
                video="x",
                width=64,
                height=32,
                fps=30,
                window_duration=1.0,
                window_count=1,
                grid=TileGrid(1, 1),
                qualities=(Quality.LOW, Quality.HIGH),
            )


class TestLookups:
    def test_best_and_worst(self):
        manifest = make_manifest()
        assert manifest.best_quality is Quality.HIGH
        assert manifest.worst_quality is Quality.LOW

    def test_duration(self):
        assert make_manifest(windows=5).duration == pytest.approx(5.0)

    def test_size_of(self):
        manifest = make_manifest()
        assert manifest.size_of(1, (0, 0), Quality.HIGH) == 1001

    def test_size_of_missing(self):
        manifest = make_manifest()
        with pytest.raises(KeyError):
            manifest.size_of(9, (0, 0), Quality.HIGH)

    def test_window_size_mixed(self):
        manifest = make_manifest()
        quality_map = {tile: Quality.LOW for tile in manifest.grid.tiles()}
        quality_map[(0, 0)] = Quality.HIGH
        assert manifest.window_size(0, quality_map) == 1000 + 3 * 200

    def test_full_sphere_size(self):
        manifest = make_manifest()
        assert manifest.full_sphere_size(0, Quality.HIGH) == 4000

    def test_window_of_time(self):
        manifest = make_manifest(windows=3)
        assert manifest.window_of_time(0.0) == 0
        assert manifest.window_of_time(1.5) == 1
        assert manifest.window_of_time(99.0) == 2  # clamped to last

    def test_window_of_time_rejects_negative(self):
        with pytest.raises(ValueError):
            make_manifest().window_of_time(-0.1)

    def test_window_interval(self):
        assert make_manifest().window_interval(1) == (1.0, 2.0)

    def test_window_interval_bounds(self):
        with pytest.raises(IndexError):
            make_manifest(windows=2).window_interval(2)


class TestResolution:
    def make_partial(self):
        """A manifest where tile (0,0) has the full ladder but (0,1) only LOW."""
        grid = TileGrid(1, 2)
        sizes = {}
        for window in range(2):
            for quality in (Quality.HIGH, Quality.LOW):
                sizes[SegmentKey(window, (0, 0), quality)] = 100 if quality is Quality.HIGH else 20
            sizes[SegmentKey(window, (0, 1), Quality.LOW)] = 20
        return Manifest(
            video="partial",
            width=64,
            height=32,
            fps=30.0,
            window_duration=1.0,
            window_count=2,
            grid=grid,
            qualities=(Quality.HIGH, Quality.LOW),
            segment_sizes=sizes,
        )

    def test_available_best_first(self):
        manifest = self.make_partial()
        assert manifest.available(0, (0, 0)) == (Quality.HIGH, Quality.LOW)
        assert manifest.available(0, (0, 1)) == (Quality.LOW,)

    def test_available_missing_position(self):
        manifest = self.make_partial()
        with pytest.raises(KeyError):
            manifest.available(0, (9, 9))

    def test_resolve_exact(self):
        manifest = self.make_partial()
        assert manifest.resolve(0, (0, 0), Quality.HIGH) is Quality.HIGH

    def test_resolve_degrades(self):
        manifest = self.make_partial()
        assert manifest.resolve(0, (0, 1), Quality.HIGH) is Quality.LOW

    def test_resolve_never_upgrades_silently_unless_forced(self):
        # Requesting below everything stored returns the worst stored.
        grid = TileGrid(1, 1)
        sizes = {SegmentKey(0, (0, 0), Quality.HIGH): 100}
        manifest = Manifest(
            video="x",
            width=32,
            height=32,
            fps=30.0,
            window_duration=1.0,
            window_count=1,
            grid=grid,
            qualities=(Quality.HIGH,),
            segment_sizes=sizes,
        )
        assert manifest.resolve(0, (0, 0), Quality.LOWEST) is Quality.HIGH

    def test_window_size_uses_resolved(self):
        manifest = self.make_partial()
        quality_map = {(0, 0): Quality.HIGH, (0, 1): Quality.HIGH}
        assert manifest.window_size(0, quality_map) == 120  # 100 + resolved 20

    def test_full_sphere_size_on_partial(self):
        manifest = self.make_partial()
        assert manifest.full_sphere_size(0, Quality.HIGH) == 120


class TestSegmentKeyIdentity:
    """SegmentKey as the canonical identity: paths, files, cache keys."""

    def test_path_round_trip(self):
        for key in (
            SegmentKey(0, (0, 0), Quality.HIGH),
            SegmentKey(17, (3, 11), Quality.LOWEST),
            SegmentKey(99999, (0, 255), Quality.MEDIUM),
        ):
            assert SegmentKey.from_path(key.to_path()) == key

    def test_path_shape(self):
        assert SegmentKey(4, (1, 2), Quality.LOW).to_path() == "4/1/2/low"

    def test_from_path_tolerates_surrounding_slashes(self):
        assert SegmentKey.from_path("/4/1/2/low/") == SegmentKey(4, (1, 2), Quality.LOW)

    @pytest.mark.parametrize(
        "junk",
        ["", "1/2/3", "1/2/3/4/5", "a/1/2/high", "1/-1/2/high", "1/2/3/neon"],
    )
    def test_from_path_rejects_junk(self, junk):
        with pytest.raises(ValueError):
            SegmentKey.from_path(junk)

    def test_cache_key_shape(self):
        # The 5-tuple layout is load-bearing: the chaos cache wrapper and
        # the scenario runner's cache/disk audit unpack it positionally.
        key = SegmentKey(3, (1, 0), Quality.HIGH)
        assert key.cache_key("demo", 2) == ("demo", 3, (1, 0), Quality.HIGH, 2)

    def test_file_name_matches_catalog(self):
        from repro.core.catalog import segment_file_name

        key = SegmentKey(7, (2, 5), Quality.LOW)
        assert key.file_name(3) == segment_file_name(7, (2, 5), Quality.LOW, 3)
        assert key.file_name(3) == "g00007_r2_c5_low_v3.seg"


class TestManifestJson:
    def test_round_trip_preserves_segment_sizes(self):
        manifest = make_manifest()
        clone = Manifest.from_json(manifest.to_json())
        assert clone.segment_sizes == manifest.segment_sizes

    def test_round_trip_preserves_layout(self):
        manifest = make_manifest(windows=5, grid=TileGrid(3, 4))
        clone = Manifest.from_json(manifest.to_json())
        assert clone.video == manifest.video
        assert (clone.width, clone.height, clone.fps) == (64, 32, 30.0)
        assert clone.window_duration == manifest.window_duration
        assert clone.window_count == manifest.window_count
        assert clone.grid == manifest.grid
        assert clone.qualities == manifest.qualities

    def test_json_is_actually_serializable(self):
        import json

        text = json.dumps(make_manifest().to_json())
        clone = Manifest.from_json(json.loads(text))
        assert clone.segment_sizes == make_manifest().segment_sizes

    def test_segment_keys_are_wire_paths(self):
        data = make_manifest().to_json()
        for path in data["segments"]:
            SegmentKey.from_path(path)  # must parse

    def test_resolution_still_works_after_round_trip(self):
        manifest = make_manifest()
        clone = Manifest.from_json(manifest.to_json())
        assert clone.resolve(0, (0, 0), Quality.HIGH) is Quality.HIGH
        assert clone.window_size(1, {tile: Quality.LOW for tile in clone.grid.tiles()}) \
            == manifest.window_size(1, {tile: Quality.LOW for tile in manifest.grid.tiles()})
