"""Unit tests for simulated network links."""

import math

import numpy as np
import pytest

from repro.stream.network import (
    ConstantBandwidth,
    SimulatedLink,
    SteppedBandwidth,
    TraceBandwidth,
)


class TestConstantBandwidth:
    def test_rate(self):
        model = ConstantBandwidth(1000.0)
        assert model.rate_at(0.0) == 1000.0
        assert model.rate_at(99.0) == 1000.0

    def test_never_changes(self):
        assert ConstantBandwidth(10.0).next_change(5.0) == math.inf

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0.0)


class TestSteppedBandwidth:
    def make(self) -> SteppedBandwidth:
        return SteppedBandwidth(steps=((0.0, 100.0), (10.0, 50.0), (20.0, 200.0)))

    def test_rate_per_interval(self):
        model = self.make()
        assert model.rate_at(5.0) == 100.0
        assert model.rate_at(10.0) == 50.0
        assert model.rate_at(25.0) == 200.0

    def test_next_change(self):
        model = self.make()
        assert model.next_change(5.0) == 10.0
        assert model.next_change(15.0) == 20.0
        assert model.next_change(30.0) == math.inf

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            SteppedBandwidth(steps=((5.0, 1.0), (0.0, 2.0)))

    def test_requires_coverage_of_zero(self):
        with pytest.raises(ValueError):
            SteppedBandwidth(steps=((1.0, 1.0),))

    def test_requires_positive_rates(self):
        with pytest.raises(ValueError):
            SteppedBandwidth(steps=((0.0, 0.0),))

    def test_requires_steps(self):
        with pytest.raises(ValueError):
            SteppedBandwidth(steps=())


class TestTraceBandwidth:
    def test_holds_last_rate(self):
        model = TraceBandwidth(np.array([0.0, 1.0]), np.array([10.0, 20.0]))
        assert model.rate_at(0.5) == 10.0
        assert model.rate_at(100.0) == 20.0

    def test_next_change(self):
        model = TraceBandwidth(np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        assert model.next_change(0.5) == 1.0
        assert model.next_change(2.5) == math.inf

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            TraceBandwidth(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            TraceBandwidth(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            TraceBandwidth(np.array([0.0]), np.array([-1.0]))

    def test_random_walk_reproducible(self):
        a = TraceBandwidth.random_walk(10.0, 1000.0, seed=3)
        b = TraceBandwidth.random_walk(10.0, 1000.0, seed=3)
        assert np.array_equal(a.rates, b.rates)

    def test_random_walk_mean_reverts(self):
        model = TraceBandwidth.random_walk(300.0, 1000.0, volatility=0.1, seed=1)
        assert 500.0 < float(np.median(model.rates)) < 2000.0


class TestSimulatedLink:
    def test_constant_rate_transfer_time(self):
        link = SimulatedLink(ConstantBandwidth(100.0))
        assert link.transfer(1000, 0.0) == pytest.approx(10.0)

    def test_transfers_queue(self):
        link = SimulatedLink(ConstantBandwidth(100.0))
        link.transfer(500, 0.0)  # busy until 5.0
        completion = link.transfer(100, 1.0)
        assert completion == pytest.approx(6.0)

    def test_idle_gap_respected(self):
        link = SimulatedLink(ConstantBandwidth(100.0))
        link.transfer(100, 0.0)  # done at 1.0
        assert link.transfer(100, 5.0) == pytest.approx(6.0)

    def test_rate_change_mid_transfer(self):
        model = SteppedBandwidth(steps=((0.0, 100.0), (5.0, 50.0)))
        link = SimulatedLink(model)
        # 5 s at 100 B/s = 500 B, remaining 250 B at 50 B/s = 5 s.
        assert link.transfer(750, 0.0) == pytest.approx(10.0)

    def test_zero_bytes_instant(self):
        link = SimulatedLink(ConstantBandwidth(10.0))
        assert link.transfer(0, 3.0) == pytest.approx(3.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            SimulatedLink(ConstantBandwidth(10.0)).transfer(-1, 0.0)

    def test_bytes_accounted(self):
        link = SimulatedLink(ConstantBandwidth(10.0))
        link.transfer(30, 0.0)
        link.transfer(12, 0.0)
        assert link.bytes_sent == 42

    def test_many_rate_changes(self):
        steps = tuple((float(i), 10.0 if i % 2 == 0 else 20.0) for i in range(10))
        link = SimulatedLink(SteppedBandwidth(steps=steps))
        # 10 B in [0,1) at 10 B/s, 20 B in [1,2) at 20, 10 B in [2,3) at 10.
        completion = link.transfer(40, 0.0)
        assert completion == pytest.approx(3.0)
