"""Unit tests for client-side throughput estimators."""

import pytest

from repro.stream.estimator import (
    MIN_TRANSFER_SECONDS,
    EwmaEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
)


class TestHarmonicMean:
    def test_no_estimate_before_observation(self):
        assert HarmonicMeanEstimator().estimate() is None

    def test_single_sample(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe(1000, 2.0)
        assert estimator.estimate() == pytest.approx(500.0)

    def test_harmonic_mean_of_two(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe(1000, 1.0)  # 1000 B/s
        estimator.observe(1000, 4.0)  # 250 B/s
        assert estimator.estimate() == pytest.approx(400.0)  # harmonic mean

    def test_window_slides(self):
        estimator = HarmonicMeanEstimator(window=2)
        estimator.observe(100, 1.0)
        estimator.observe(200, 1.0)
        estimator.observe(300, 1.0)  # pushes the 100 out
        assert estimator.estimate() == pytest.approx(240.0)

    def test_slow_transfer_drags_estimate_down(self):
        estimator = HarmonicMeanEstimator()
        for _ in range(4):
            estimator.observe(1000, 1.0)
        estimator.observe(1000, 100.0)  # one near-stall
        assert estimator.estimate() < 50.0

    def test_ignores_zero_byte_samples(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe(0, 1.0)
        assert estimator.estimate() is None

    def test_zero_duration_clamped_not_dropped(self):
        """An instant transfer is a very-fast sample, not no sample —
        dropping it would leave the estimator blind on fast links."""
        estimator = HarmonicMeanEstimator()
        estimator.observe(100, 0.0)
        assert estimator.estimate() == pytest.approx(100 / MIN_TRANSFER_SECONDS)

    def test_reset(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe(100, 1.0)
        estimator.reset()
        assert estimator.estimate() is None

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(window=0)


class TestEwma:
    def test_first_sample_is_estimate(self):
        estimator = EwmaEstimator(alpha=0.5)
        estimator.observe(100, 1.0)
        assert estimator.estimate() == pytest.approx(100.0)

    def test_blends(self):
        estimator = EwmaEstimator(alpha=0.5)
        estimator.observe(100, 1.0)
        estimator.observe(200, 1.0)
        assert estimator.estimate() == pytest.approx(150.0)

    def test_small_alpha_smooths(self):
        smooth = EwmaEstimator(alpha=0.1)
        jumpy = EwmaEstimator(alpha=0.9)
        for estimator in (smooth, jumpy):
            estimator.observe(100, 1.0)
            estimator.observe(1000, 1.0)
        assert smooth.estimate() < jumpy.estimate()

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)

    def test_reset(self):
        estimator = EwmaEstimator()
        estimator.observe(100, 1.0)
        estimator.reset()
        assert estimator.estimate() is None


class TestLastSample:
    def test_tracks_latest(self):
        estimator = LastSampleEstimator()
        estimator.observe(100, 1.0)
        estimator.observe(500, 1.0)
        assert estimator.estimate() == pytest.approx(500.0)


class TestZeroDurationClamp:
    """All three estimators clamp instant transfers to the 1 ms floor."""

    @pytest.mark.parametrize(
        "estimator_factory",
        [HarmonicMeanEstimator, EwmaEstimator, LastSampleEstimator],
    )
    def test_instant_transfer_still_counts(self, estimator_factory):
        estimator = estimator_factory()
        estimator.observe(2000, 0.0)
        assert estimator.estimate() == pytest.approx(2000 / MIN_TRANSFER_SECONDS)

    @pytest.mark.parametrize(
        "estimator_factory",
        [HarmonicMeanEstimator, EwmaEstimator, LastSampleEstimator],
    )
    def test_negative_duration_clamped(self, estimator_factory):
        estimator = estimator_factory()
        estimator.observe(2000, -1.0)
        assert estimator.estimate() == pytest.approx(2000 / MIN_TRANSFER_SECONDS)

    @pytest.mark.parametrize(
        "estimator_factory",
        [HarmonicMeanEstimator, EwmaEstimator, LastSampleEstimator],
    )
    def test_zero_bytes_still_ignored(self, estimator_factory):
        estimator = estimator_factory()
        estimator.observe(0, 0.0)
        assert estimator.estimate() is None

    def test_durations_above_floor_unaffected(self):
        estimator = LastSampleEstimator()
        estimator.observe(1000, 2.0)
        assert estimator.estimate() == pytest.approx(500.0)


class TestStreamerIntegration:
    def test_estimated_session_completes(self, session_db):
        from repro import ConstantBandwidth, PredictiveTilingPolicy, SessionConfig
        from repro.workloads.users import ViewerPopulation

        trace = ViewerPopulation(seed=4).trace(0, duration=3.0, rate=10.0)
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(50_000),
            predictor="static",
            estimator=HarmonicMeanEstimator(),
        )
        report = session_db.serve("clip", (trace, config))
        assert len(report.records) == 3

    def test_estimator_converges_on_constant_link(self, session_db):
        from repro import ConstantBandwidth, PredictiveTilingPolicy, SessionConfig
        from repro.workloads.users import ViewerPopulation

        estimator = HarmonicMeanEstimator()
        trace = ViewerPopulation(seed=4).trace(0, duration=3.0, rate=10.0)
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(10_000),
            predictor="static",
            estimator=estimator,
        )
        session_db.serve("clip", (trace, config))
        assert estimator.estimate() == pytest.approx(10_000, rel=0.01)
