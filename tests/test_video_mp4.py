"""Unit tests for the MP4-style atom container."""

import pytest

from repro.video.mp4 import (
    Atom,
    Mp4File,
    make_dref,
    make_ftyp,
    make_mvhd,
    make_stsd,
    make_stss,
    make_sv3d,
    parse_atoms,
    parse_dref,
    parse_mvhd,
    parse_stsd,
    parse_stss,
    parse_sv3d,
)


class TestAtom:
    def test_kind_must_be_four_chars(self):
        with pytest.raises(ValueError):
            Atom("abc")

    def test_payload_and_children_exclusive(self):
        with pytest.raises(ValueError):
            Atom("moov", payload=b"x", children=[Atom("free")])

    def test_leaf_serialise_layout(self):
        atom = Atom("free", payload=b"abcd")
        data = atom.serialize()
        assert data[:4] == (12).to_bytes(4, "big")
        assert data[4:8] == b"free"
        assert data[8:] == b"abcd"

    def test_container_serialises_children(self):
        container = Atom("moov", children=[Atom("free", payload=b"xy")])
        parsed = parse_atoms(container.serialize())
        assert parsed[0].kind == "moov"
        assert parsed[0].children[0].payload == b"xy"

    def test_empty_container_type_round_trips_as_container(self):
        moov = Atom("moov", children=[Atom("trak", children=[Atom("stsd", payload=b"z")])])
        parsed = parse_atoms(moov.serialize())[0]
        assert parsed.find("trak.stsd").payload == b"z"


class TestParsing:
    def test_unknown_atom_round_trips(self):
        atom = Atom("zzzz", payload=b"\x01\x02\x03")
        parsed = parse_atoms(atom.serialize())
        assert parsed[0].kind == "zzzz"
        assert parsed[0].payload == b"\x01\x02\x03"

    def test_truncated_header(self):
        with pytest.raises(ValueError):
            parse_atoms(b"\x00\x00\x00")

    def test_size_too_small(self):
        bad = (4).to_bytes(4, "big") + b"free"
        with pytest.raises(ValueError):
            parse_atoms(bad)

    def test_size_overruns_buffer(self):
        bad = (100).to_bytes(4, "big") + b"free" + b"xx"
        with pytest.raises(ValueError):
            parse_atoms(bad)

    def test_sequence_of_atoms(self):
        data = Atom("ftyp", payload=b"ab").serialize() + Atom("mdat", payload=b"cd").serialize()
        parsed = parse_atoms(data)
        assert [atom.kind for atom in parsed] == ["ftyp", "mdat"]


class TestFind:
    def build(self) -> Mp4File:
        return Mp4File(
            atoms=[
                make_ftyp(),
                Atom(
                    "moov",
                    children=[
                        make_mvhd(1000, 5000),
                        Atom("trak", children=[make_stsd("vcbd", 64, 32, 30.0, "high")]),
                        Atom("trak", children=[make_stsd("vcbd", 64, 32, 30.0, "low")]),
                    ],
                ),
            ]
        )

    def test_find_top_level(self):
        assert self.build().find("moov") is not None

    def test_find_nested_path(self):
        stsd = self.build().find("moov.trak.stsd")
        assert stsd is not None
        assert parse_stsd(stsd)["quality"] == "high"  # first match wins

    def test_find_missing(self):
        assert self.build().find("moov.vcld") is None

    def test_find_all(self):
        moov = self.build().find("moov")
        assert len(moov.find_all("trak")) == 2

    def test_whole_file_round_trip(self):
        original = self.build()
        parsed = Mp4File.parse(original.serialize())
        assert parsed.serialize() == original.serialize()


class TestTypedAtoms:
    def test_mvhd_round_trip(self):
        assert parse_mvhd(make_mvhd(1000, 90_000)) == (1000, 90_000)

    def test_stsd_round_trip(self):
        parsed = parse_stsd(make_stsd("vcbd", 256, 128, 29.97, "medium"))
        assert parsed == {
            "codec": "vcbd",
            "width": 256,
            "height": 128,
            "fps": 29.97,
            "quality": "medium",
        }

    def test_stss_round_trip(self):
        entries = [(0, 0, 1234), (1000, 1, 999), (2000, 1, 17)]
        assert parse_stss(make_stss(entries)) == entries

    def test_stss_empty(self):
        assert parse_stss(make_stss([])) == []

    def test_dref_round_trip_unicode(self):
        assert parse_dref(make_dref("segments/gop_00001_café.seg")) == (
            "segments/gop_00001_café.seg"
        )

    def test_sv3d_round_trip(self):
        assert parse_sv3d(make_sv3d("equirectangular")) == "equirectangular"

    def test_ftyp_brand_padded(self):
        atom = make_ftyp("vc")
        assert len(atom.payload) == 4
