"""The resilience layer: bounded retry, the degradation ladder, and the
no-fault differential guarantee.

Three claims are pinned here: (1) the retry policy's backoff schedule is
exactly what its parameters say; (2) persistent failures walk the stored
ladder strictly downward — degrade, then skip, never upgrade; (3) with
no faults injected the resilient path is *byte-identical* to the
un-wrapped storage path, window for window.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ConstantBandwidth, Quality, SessionConfig, UniformAdaptive
from repro.chaos import ChaosStorageManager, FaultPlan, FaultRule
from repro.core.errors import SegmentNotFoundError, TransientSegmentError
from repro.core.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    read_window_resilient,
)
from repro.core.streamer import Streamer
from repro.obs import MetricsRegistry
from repro.workloads.users import ViewerPopulation


class TestRetryPolicy:
    def test_delay_sequence_is_capped_geometric(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.25)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.25, 0.25]

    def test_backoff_calls_the_injected_sleep(self):
        slept = []
        policy = RetryPolicy(
            attempts=4, base_delay=0.01, multiplier=3.0, max_delay=1.0,
            sleep=slept.append,
        )
        for retry in (1, 2, 3):
            policy.backoff(retry)
        assert slept == [0.01, 0.03, 0.09]

    def test_zero_base_delay_never_sleeps(self):
        slept = []
        policy = RetryPolicy(sleep=slept.append)
        policy.backoff(1)
        policy.backoff(2)
        assert slept == []
        assert DEFAULT_RETRY_POLICY.base_delay == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"max_delay": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_index_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class ScriptedStorage:
    """Delegates to a real storage manager, but each (tile, quality) can
    be scripted to raise a queue of errors before (or instead of)
    serving."""

    def __init__(self, inner, scripts):
        self.inner = inner
        self.scripts = {key: list(errors) for key, errors in scripts.items()}
        self.calls = []

    def read_segment(self, name, gop, tile, quality, version=None):
        self.calls.append((gop, tile, quality))
        queue = self.scripts.get((tile, quality))
        if queue:
            raise queue.pop(0)
        return self.inner.read_segment(name, gop, tile, quality, version)


@pytest.fixture()
def manifest(session_db):
    return session_db.storage.build_manifest("clip")


def _assemble(session_db, manifest, scripts, attempts=3):
    storage = ScriptedStorage(session_db.storage, scripts)
    metrics = MetricsRegistry()
    quality_map = {tile: Quality.HIGH for tile in session_db.meta("clip").grid.tiles()}
    result = read_window_resilient(
        storage, manifest, "clip", 0, quality_map,
        policy=RetryPolicy(attempts=attempts), metrics=metrics,
    )
    return storage, metrics, result


class TestResilientAssembly:
    def test_transient_error_heals_within_budget(self, session_db, manifest):
        tile = (0, 0)
        scripts = {(tile, Quality.HIGH): [TransientSegmentError("blip")] * 2}
        storage, metrics, result = _assemble(session_db, manifest, scripts)
        assert result.quality_map[tile] == Quality.HIGH
        events = [event for event in result.events if event.tile == tile]
        assert [event.kind for event in events] == ["retry"]
        assert events[0].attempts == 3
        assert metrics.counter("stream.retries").total() == 2
        assert metrics.counter("stream.degradations").total() == 0

    def test_persistent_error_degrades_down_the_ladder(self, session_db, manifest):
        tile = (1, 0)
        scripts = {(tile, Quality.HIGH): [SegmentNotFoundError("gone")]}
        storage, metrics, result = _assemble(session_db, manifest, scripts)
        assert result.quality_map[tile] == Quality.LOW  # ladder is HIGH, LOW
        events = [event for event in result.events if event.tile == tile]
        assert [event.kind for event in events] == ["degrade"]
        assert events[0].requested == Quality.HIGH
        assert events[0].delivered == Quality.LOW
        assert metrics.counter("stream.degradations").total() == 1
        # One failed read of HIGH, one successful read of LOW.
        assert (tile, Quality.LOW) in [(t, q) for _, t, q in storage.calls]

    def test_retry_exhaustion_falls_to_the_ladder(self, session_db, manifest):
        tile = (0, 1)
        scripts = {(tile, Quality.HIGH): [TransientSegmentError("flap")] * 99}
        storage, metrics, result = _assemble(session_db, manifest, scripts, attempts=2)
        assert result.quality_map[tile] == Quality.LOW
        assert metrics.counter("stream.retries").total() == 2
        assert metrics.counter("stream.degradations").total() == 1

    def test_ladder_exhaustion_skips_the_tile(self, session_db, manifest):
        tile = (1, 1)
        scripts = {
            (tile, Quality.HIGH): [SegmentNotFoundError("gone")],
            (tile, Quality.LOW): [SegmentNotFoundError("also gone")],
        }
        storage, metrics, result = _assemble(session_db, manifest, scripts)
        assert tile not in result.quality_map
        assert tile not in result.payloads
        events = [event for event in result.events if event.tile == tile]
        assert [event.kind for event in events] == ["skip"]
        assert events[0].delivered is None
        assert metrics.counter("stream.tiles_skipped").total() == 1

    def test_delivery_never_upgrades_past_the_request(self, session_db, manifest):
        # Request LOW while HIGH is stored: failure of LOW must not be
        # "healed" by shipping HIGH.
        tile = (0, 0)
        storage = ScriptedStorage(
            session_db.storage, {(tile, Quality.LOW): [SegmentNotFoundError("gone")]}
        )
        result = read_window_resilient(
            storage, manifest, "clip", 0, {tile: Quality.LOW},
            metrics=MetricsRegistry(),
        )
        assert tile not in result.quality_map  # nothing below LOW is stored
        assert [event.kind for event in result.events] == ["skip"]

    def test_event_order_is_sorted_by_tile(self, session_db, manifest):
        scripts = {
            ((1, 1), Quality.HIGH): [SegmentNotFoundError("x")],
            ((0, 0), Quality.HIGH): [SegmentNotFoundError("x")],
        }
        _, _, result = _assemble(session_db, manifest, scripts)
        assert [event.tile for event in result.events] == [(0, 0), (1, 1)]


def _session_config(retry=None):
    return SessionConfig(
        policy=UniformAdaptive(),
        bandwidth=ConstantBandwidth(50_000.0),
        predictor="static",
        retry=retry,
    )


def _schedule(report):
    """The observable delivery schedule of a session."""
    return [
        (
            record.window,
            record.request_time,
            record.delivered_time,
            record.bytes_sent,
            sorted((tile, quality.label) for tile, quality in record.quality_map.items()),
        )
        for record in report.records
    ]


class TestDifferential:
    def test_no_fault_chaos_path_is_byte_identical(self, session_db):
        trace = ViewerPopulation(seed=2).trace(0, duration=3.0, rate=10.0)

        plain = Streamer(session_db.storage, session_db.prediction,
                         registry=MetricsRegistry())
        baseline = plain.serve("clip", trace, _session_config())

        chaos_storage = ChaosStorageManager(
            session_db.storage, FaultPlan(rules=(), seed=123)
        )
        wrapped = Streamer(chaos_storage, session_db.prediction,
                           registry=MetricsRegistry())
        chaotic = wrapped.serve("clip", trace, _session_config())

        assert _schedule(chaotic) == _schedule(baseline)
        assert chaotic.degradation_events == []
        assert baseline.degradation_events == []

    def test_explicit_retry_policy_does_not_change_clean_delivery(self, session_db):
        trace = ViewerPopulation(seed=4).trace(1, duration=3.0, rate=10.0)
        streamer = Streamer(session_db.storage, session_db.prediction,
                            registry=MetricsRegistry())
        default = streamer.serve("clip", trace, _session_config())
        tuned = streamer.serve(
            "clip", trace, _session_config(retry=RetryPolicy(attempts=7))
        )
        assert _schedule(tuned) == _schedule(default)


class TestChaosProperty:
    @given(
        rate=st.floats(min_value=0.0, max_value=0.5),
        kind=st.sampled_from(["flaky", "slow", "missing", "corrupt"]),
        burst=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_subcritical_plan_yields_a_terminating_session(
        self, session_db, rate, kind, burst, seed
    ):
        # Fault rate < 1.0: every session must terminate with a full
        # QoE report and zero uncaught exceptions — degradation is
        # allowed, crashing is not.
        plan = FaultPlan(
            rules=(FaultRule(kind=kind, rate=rate, burst=burst),) if rate > 0 else (),
            seed=seed,
        )
        storage = ChaosStorageManager(session_db.storage, plan)
        streamer = Streamer(storage, session_db.prediction, registry=MetricsRegistry())
        trace = ViewerPopulation(seed=seed).trace(0, duration=3.0, rate=10.0)
        report = streamer.serve("clip", trace, _session_config())
        assert len(report.records) == session_db.meta("clip").gop_count
        for record in report.records:
            requested = record.requested_map or {}
            for tile, delivered in record.quality_map.items():
                assert delivered <= requested.get(tile, delivered)
