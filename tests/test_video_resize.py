"""Unit tests for plane/frame resampling (the resolution-scaled rung)."""

import numpy as np
import pytest

from repro.video.frame import (
    Frame,
    downsample_frame,
    downsample_plane,
    psnr,
    upsample_frame,
    upsample_plane,
)


class TestDownsample:
    def test_factor_one_is_copy(self):
        plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
        out = downsample_plane(plane, 1)
        assert np.array_equal(out, plane)
        assert out is not plane

    def test_box_mean(self):
        plane = np.array([[0, 0, 100, 100], [0, 0, 100, 100]], dtype=np.uint8)
        out = downsample_plane(plane, 2)
        assert out.shape == (1, 2)
        assert out.tolist() == [[0, 100]]

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            downsample_plane(np.zeros((6, 8), dtype=np.uint8), 4)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            downsample_plane(np.zeros((8, 8), dtype=np.uint8), 0)


class TestUpsample:
    def test_factor_one_is_copy(self):
        plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
        assert np.array_equal(upsample_plane(plane, 1), plane)

    def test_shape(self):
        out = upsample_plane(np.zeros((4, 6), dtype=np.uint8), 2)
        assert out.shape == (8, 12)

    def test_constant_preserved(self):
        out = upsample_plane(np.full((4, 4), 77, dtype=np.uint8), 2)
        assert np.all(out == 77)

    def test_bilinear_interpolates_between_values(self):
        plane = np.array([[0, 100]], dtype=np.uint8)
        out = upsample_plane(plane, 2)
        # The two middle columns straddle the edge: strictly between.
        assert 0 < out[0, 1] < 100
        assert 0 < out[0, 2] < 100

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            upsample_plane(np.zeros((4, 4), dtype=np.uint8), -1)


class TestRoundTrip:
    def test_smooth_content_survives(self):
        x = np.linspace(0, 4 * np.pi, 64)
        y = np.linspace(0, 2 * np.pi, 32)
        plane = (128 + 80 * np.sin(x)[None, :] * np.cos(y)[:, None]).astype(np.uint8)
        restored = upsample_plane(downsample_plane(plane, 2), 2)
        assert psnr(plane, restored) > 30

    def test_frame_round_trip_dimensions(self):
        frame = Frame.blank(64, 32, luma=90)
        small = downsample_frame(frame, 2)
        assert (small.width, small.height) == (32, 16)
        big = upsample_frame(small, 2)
        assert (big.width, big.height) == (64, 32)
        assert np.all(big.y == 90)
