"""Unit tests for the client simulator: playback schedule and QoE probe."""

import math

import numpy as np
import pytest

from repro.geometry.grid import TileGrid
from repro.geometry.viewport import Viewport
from repro.predict.traces import Trace, circular_pan_trace
from repro.stream.client import PlaybackSimulator, ViewportQualityProbe
from repro.video.quality import Quality
from repro.video.tiles import TiledVideoCodec
from repro.workloads.videos import synthetic_video


class TestPlaybackSimulator:
    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            PlaybackSimulator(0.0)

    def test_rejects_no_windows(self):
        with pytest.raises(ValueError):
            PlaybackSimulator(1.0).schedule([])

    def test_startup_wait_is_not_a_stall(self):
        starts, stalls = PlaybackSimulator(1.0).schedule([5.0, 5.5])
        assert starts == [5.0, 6.0]
        assert stalls == [0.0, 0.0]

    def test_on_time_delivery_no_stalls(self):
        starts, stalls = PlaybackSimulator(1.0).schedule([0.5, 1.0, 2.0])
        assert starts == [0.5, 1.5, 2.5]
        assert sum(stalls) == 0.0

    def test_late_window_stalls(self):
        starts, stalls = PlaybackSimulator(1.0).schedule([0.0, 3.0])
        assert starts == [0.0, 3.0]
        assert stalls == [0.0, 2.0]

    def test_stall_shifts_subsequent_schedule(self):
        starts, stalls = PlaybackSimulator(1.0).schedule([0.0, 3.0, 3.5])
        assert starts == [0.0, 3.0, 4.0]
        assert stalls == [0.0, 2.0, 0.0]


class TestViewportQualityProbe:
    @pytest.fixture(scope="class")
    def setup(self):
        frames = list(
            synthetic_video("venice", width=64, height=32, fps=4.0, duration=1.0, seed=2)
        )
        codec = TiledVideoCodec(TileGrid(2, 2), 64, 32)
        high = codec.encode_gop(frames, Quality.HIGH)
        low = codec.encode_gop(frames, Quality.LOWEST)
        trace = circular_pan_trace(2.0, rate=8.0)
        return frames, high, low, trace

    def test_identical_window_hits_ceiling(self, setup):
        frames, high, _, trace = setup
        probe = ViewportQualityProbe(Viewport(), render_width=16, render_height=16)
        decoded = high.decode()
        score = probe.window_psnr(high, decoded, trace, media_start=0.0, fps=4.0)
        assert score == pytest.approx(99.0)

    def test_lower_quality_scores_lower(self, setup):
        frames, high, low, trace = setup
        probe = ViewportQualityProbe(Viewport(), render_width=16, render_height=16)
        reference = high.decode()
        high_score = probe.window_psnr(high, reference, trace, 0.0, 4.0)
        low_score = probe.window_psnr(low, reference, trace, 0.0, 4.0)
        assert low_score < high_score

    def test_degradation_outside_viewport_is_invisible(self, setup):
        frames, high, _, _ = setup
        probe = ViewportQualityProbe(
            Viewport(fov_theta=0.8, fov_phi=0.8), render_width=16, render_height=16
        )
        reference = high.decode()
        # Gaze fixed at theta=pi/2; destroy only the opposite side (col 1
        # spans theta in [pi, 2pi)).
        mixed = high.replace(
            TiledVideoCodec(TileGrid(2, 2), 64, 32).encode_gop(
                [f for f in frames], Quality.LOWEST, tiles={(0, 1), (1, 1)}
            )
        )
        # Gaze fixed at theta=pi/2 (middle of column 0, far from column 1).
        gaze_trace = Trace(
            np.array([0.0, 2.0]),
            np.array([math.pi / 2, math.pi / 2]),
            np.array([math.pi / 2, math.pi / 2]),
        )
        score = probe.window_psnr(mixed, reference, gaze_trace, 0.0, 4.0)
        assert score > 40  # only far-side tiles were degraded

    def test_frame_count_mismatch_raises(self, setup):
        frames, high, _, trace = setup
        probe = ViewportQualityProbe(Viewport())
        with pytest.raises(ValueError):
            probe.window_psnr(high, frames[:-1], trace, 0.0, 4.0)
