"""Unit tests for viewport geometry."""

import math

import numpy as np
import pytest

from repro.geometry.grid import TileGrid
from repro.geometry.viewport import Orientation, Viewport


class TestOrientation:
    def test_wraps_theta(self):
        assert Orientation(-0.5, 1.0).theta == pytest.approx(2 * math.pi - 0.5)

    def test_clamps_phi(self):
        assert Orientation(0.0, 9.9).phi == math.pi

    def test_as_tuple(self):
        assert Orientation(1.0, 2.0).as_tuple() == (1.0, 2.0)


class TestViewportValidation:
    def test_rejects_fov_over_pi(self):
        with pytest.raises(ValueError):
            Viewport(fov_theta=3.5)

    def test_rejects_zero_fov(self):
        with pytest.raises(ValueError):
            Viewport(fov_phi=0.0)


class TestRayDirections:
    def test_center_ray_is_forward(self):
        viewport = Viewport()
        orientation = Orientation(1.0, 1.2)
        rays = viewport.ray_directions(orientation, 9, 9)
        from repro.geometry.sphere import to_unit_vector

        assert np.allclose(rays[4, 4], to_unit_vector(1.0, 1.2), atol=1e-9)

    def test_rays_are_unit(self):
        rays = Viewport().ray_directions(Orientation(0.3, 1.0), 7, 5)
        assert np.allclose(np.linalg.norm(rays, axis=-1), 1.0)

    def test_rejects_empty_raster(self):
        with pytest.raises(ValueError):
            Viewport().ray_directions(Orientation(0, 1), 0, 5)

    def test_rays_within_diagonal_fov(self):
        viewport = Viewport(fov_theta=math.radians(90), fov_phi=math.radians(90))
        orientation = Orientation(0.0, math.pi / 2)
        rays = viewport.ray_directions(orientation, 15, 15)
        from repro.geometry.sphere import to_unit_vector

        forward = to_unit_vector(0.0, math.pi / 2)
        angles = np.arccos(np.clip(rays @ forward, -1, 1))
        # The diagonal of a 90x90 frustum reaches ~54.7 degrees.
        assert np.max(angles) < math.radians(56)

    def test_pole_gaze_is_well_defined(self):
        rays = Viewport().ray_directions(Orientation(0.7, 0.0), 5, 5)
        assert np.all(np.isfinite(rays))


class TestVisibleTiles:
    def test_equator_gaze_covers_center_tiles(self):
        grid = TileGrid(4, 4)
        viewport = Viewport(fov_theta=math.radians(90), fov_phi=math.radians(90))
        center = Orientation(math.pi, math.pi / 2)
        visible = viewport.visible_tiles(center, grid)
        row, col = grid.tile_of(math.pi, math.pi / 2)
        assert (row, col) in visible
        assert len(visible) < grid.tile_count

    def test_narrow_viewport_sees_fewer_tiles(self):
        grid = TileGrid(8, 8)
        wide = Viewport(fov_theta=math.radians(110), fov_phi=math.radians(110))
        narrow = Viewport(fov_theta=math.radians(40), fov_phi=math.radians(40))
        orientation = Orientation(1.0, math.pi / 2)
        assert len(narrow.visible_tiles(orientation, grid)) < len(
            wide.visible_tiles(orientation, grid)
        )

    def test_pole_gaze_spans_many_columns(self):
        grid = TileGrid(4, 8)
        visible = Viewport().visible_tiles(Orientation(0.0, 0.05), grid)
        columns = {col for row, col in visible if row == 0}
        assert len(columns) == 8  # looking at the pole sees all azimuths

    def test_seam_gaze_spans_wrap(self):
        grid = TileGrid(4, 8)
        visible = Viewport().visible_tiles(Orientation(0.0, math.pi / 2), grid)
        columns = {col for _, col in visible}
        assert 0 in columns and 7 in columns

    def test_coverage_fraction(self):
        grid = TileGrid(4, 4)
        fraction = Viewport().coverage_fraction(Orientation(0.5, math.pi / 2), grid)
        assert 0.0 < fraction < 1.0


class TestRender:
    def test_constant_plane_renders_constant(self):
        plane = np.full((32, 64), 99.0)
        image = Viewport().render(plane, Orientation(1.0, math.pi / 2), 8, 8)
        assert image.shape == (8, 8)
        assert np.allclose(image, 99.0)

    def test_render_picks_up_gaze_direction(self):
        plane = np.zeros((32, 64))
        plane[:, :32] = 200.0  # bright hemisphere around theta in [0, pi)
        bright = Viewport(fov_theta=0.6, fov_phi=0.6).render(
            plane, Orientation(math.pi / 2, math.pi / 2), 8, 8
        )
        dark = Viewport(fov_theta=0.6, fov_phi=0.6).render(
            plane, Orientation(3 * math.pi / 2, math.pi / 2), 8, 8
        )
        assert np.mean(bright) > 150
        assert np.mean(dark) < 50


class TestCoverageScaling:
    def test_coverage_shrinks_with_finer_grids(self):
        """On finer grids the viewport covers a smaller *fraction* — the
        geometric fact that makes fine tiling save bandwidth (E7)."""
        orientation = Orientation(1.0, math.pi / 2)
        viewport = Viewport()
        coarse = viewport.coverage_fraction(orientation, TileGrid(2, 4))
        fine = viewport.coverage_fraction(orientation, TileGrid(4, 8))
        finest = viewport.coverage_fraction(orientation, TileGrid(8, 16))
        assert coarse >= fine >= finest

    def test_coverage_grows_toward_poles(self):
        """Near a pole the equirectangular footprint widens across all
        azimuth columns."""
        grid = TileGrid(4, 8)
        viewport = Viewport()
        equator = viewport.coverage_fraction(Orientation(1.0, math.pi / 2), grid)
        polar = viewport.coverage_fraction(Orientation(1.0, 0.15), grid)
        assert polar > equator
