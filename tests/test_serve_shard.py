"""End-to-end sharded delivery: peer fetch, routing, coherence, failover.

A real 3-node tier built with ``materialize_shards`` — each node holds
only its owned segment payloads plus the full metadata set — exercised
over actual sockets. The contracts pinned here:

* **Byte identity regardless of answering node** — any node returns any
  segment, peer-fetching the ones it does not own.
* **Error taxonomy** — an owner's 404 is authoritative (propagates as
  not-found); an unreachable owner set surfaces as transient so clients
  fail over.
* **Differential QoE** — a no-fault wire session through the sharded
  tier is JSON-equal to the single-server wire path and the simulated
  path.
* **Coherence** — a shard-map change drops pins the node no longer owns
  and refuses version rollback.
"""

from __future__ import annotations

import json

import pytest

from repro import Quality, SessionConfig
from repro.core.errors import SegmentNotFoundError, TransientSegmentError
from repro.core.storage import StorageManager
from repro.obs import MetricsRegistry
from repro.serve import (
    FailoverSegmentClient,
    HttpSegmentClient,
    SegmentServer,
    ServerConfig,
    ShardMap,
    materialize_shards,
    serve_session,
    start_server,
)
from repro.stream.abr import UniformAdaptive
from repro.stream.dash import SegmentKey
from repro.stream.network import ConstantBandwidth
from repro.workloads.users import ViewerPopulation

NODES = ("node-0", "node-1", "node-2")


class ShardTier:
    """Three live shard servers over a partitioned copy of ``session_db``."""

    def __init__(self, session_db, root, replication_factor=2):
        self.shard_map = ShardMap(nodes=NODES, replication_factor=replication_factor)
        self.node_roots = {node: root / node for node in NODES}
        materialize_shards(session_db.storage, self.node_roots, self.shard_map)
        self.registries = {node: MetricsRegistry() for node in NODES}
        self.handles = {}
        for node in NODES:
            storage = StorageManager(self.node_roots[node], registry=self.registries[node])
            self.handles[node] = start_server(
                storage,
                ServerConfig(node_id=node, shard_map=self.shard_map, peer_timeout=2.0),
                registry=self.registries[node],
            )
        self.node_urls = {node: self.handles[node].base_url for node in NODES}
        for handle in self.handles.values():
            handle.update_shard_map(self.shard_map, self.node_urls)

    def counter(self, node, name):
        return self.registries[node].counter(name).total()

    def stop(self):
        for handle in self.handles.values():
            handle.stop()


@pytest.fixture()
def tier(session_db, tmp_path):
    tier = ShardTier(session_db, tmp_path)
    yield tier
    tier.stop()


def _config(bandwidth=200_000):
    return SessionConfig(
        policy=UniformAdaptive(),
        bandwidth=ConstantBandwidth(bandwidth),
        predictor="static",
    )


def _trace(session_db, user=0):
    meta = session_db.meta("clip")
    return ViewerPopulation(seed=2).trace(user, duration=meta.duration, rate=10.0)


def _summary_key(report):
    return json.dumps(report.summary(), sort_keys=True)


class TestByteIdentity:
    def test_every_segment_from_every_node(self, session_db, tier):
        manifest = session_db.storage.build_manifest("clip")
        for node in NODES:
            with HttpSegmentClient(tier.node_urls[node]) as client:
                for key in manifest.segment_sizes:
                    wire = client.fetch_segment("clip", key)
                    local = session_db.storage.read_segment(
                        "clip", key.window, key.tile, key.quality
                    )
                    assert wire == local, f"{node} differed on {key.to_path()}"
        # With rf=2 of 3 nodes, every node is a non-owner for ~1/3 of the
        # catalog — the sweep above cannot succeed without peer fetches.
        fetched = sum(tier.counter(node, "serve.peer_fetches") for node in NODES)
        assert fetched > 0

    def test_repeat_non_owned_read_hits_peer_cache(self, session_db, tier):
        manifest = session_db.storage.build_manifest("clip")
        key = next(
            key
            for key in sorted(manifest.segment_sizes, key=lambda k: k.to_path())
            if not tier.shard_map.owns("node-0", "clip", key)
        )
        with HttpSegmentClient(tier.node_urls["node-0"]) as client:
            first = client.fetch_segment("clip", key)
            second = client.fetch_segment("clip", key)
        assert first == second
        assert tier.counter("node-0", "serve.peer_fetches") == 1
        assert tier.counter("node-0", "serve.peer_cache_hits") == 1


class TestErrorTaxonomy:
    def test_owner_404_is_authoritative(self, tier):
        # A segment that exists nowhere: whichever node answers, the
        # owners' not-found must propagate as 404, not as a transient
        # error that would send clients on a futile failover tour.
        bogus = SegmentKey(999, (0, 0), Quality.HIGH)
        for node in NODES:
            with HttpSegmentClient(tier.node_urls[node]) as client:
                with pytest.raises(SegmentNotFoundError):
                    client.fetch_segment("clip", bogus)

    def test_unreachable_owners_surface_as_transient(self, session_db, tier):
        manifest = session_db.storage.build_manifest("clip")
        key, owners = next(
            (key, tier.shard_map.owners("clip", key))
            for key in sorted(manifest.segment_sizes, key=lambda k: k.to_path())
            if not tier.shard_map.owns("node-0", "clip", key)
        )
        for owner in owners:
            tier.handles[owner].stop()
        with HttpSegmentClient(tier.node_urls["node-0"]) as client:
            with pytest.raises(TransientSegmentError):
                client.fetch_segment("clip", key)
        assert tier.counter("node-0", "serve.peer_errors") > 0


class TestDifferentialQoE:
    def test_sharded_tier_matches_single_server_and_sim(self, session_db, tier):
        # The acceptance criterion: same trace, same config, no faults —
        # the sharded tier must be QoE-indistinguishable from both the
        # single-replica wire path and the simulated path.
        trace, config = _trace(session_db), _config()
        sim = session_db.serve("clip", (trace, config))
        single = start_server(session_db.storage)
        try:
            lone = serve_session(single.base_url, "clip", trace, config)
        finally:
            single.stop()
        sharded = serve_session(
            list(tier.node_urls.values()),
            "clip",
            trace,
            config,
            shard_map=tier.shard_map,
            node_urls=tier.node_urls,
        )
        assert _summary_key(sharded) == _summary_key(lone) == _summary_key(sim)

    def test_owner_routing_is_exercised(self, session_db, tier):
        registry = MetricsRegistry()
        serve_session(
            list(tier.node_urls.values()),
            "clip",
            _trace(session_db),
            _config(),
            registry=registry,
            shard_map=tier.shard_map,
            node_urls=tier.node_urls,
        )
        assert registry.counter("failover.shard_routed").total() > 0
        assert registry.counter("failover.shard_unroutable").total() == 0


class TestFailover:
    def test_sessions_complete_with_a_dead_node(self, session_db, tier):
        # rf=2: every segment has a live owner after one node dies, and
        # surviving non-owners can still peer-fetch from it.
        tier.handles["node-0"].stop()
        registry = MetricsRegistry()
        report = serve_session(
            list(tier.node_urls.values()),
            "clip",
            _trace(session_db),
            _config(),
            registry=registry,
            shard_map=tier.shard_map,
            node_urls=tier.node_urls,
        )
        assert report.records
        meta = session_db.meta("clip")
        assert len(report.records) == session_db.storage.build_manifest("clip").window_count
        assert meta.duration > 0


class TestCoherence:
    def test_map_change_unpins_segments_the_node_no_longer_owns(self, session_db):
        server = SegmentServer(
            session_db.storage,
            ServerConfig(
                node_id="node-0",
                shard_map=ShardMap(nodes=("node-0",), replication_factor=1),
                pin_budget_bytes=1 << 20,
            ),
        )
        manifest = session_db.storage.build_manifest("clip")
        for key in manifest.segment_sizes:
            data = session_db.storage.read_segment(
                "clip", key.window, key.tile, key.quality
            )
            assert server.hot.pin(f"/segment/clip/{key.to_path()}", data)
        pinned_before = len(server.hot.paths())
        successor = server.shard_map.with_nodes(NODES)
        dropped = server.update_shard_map(successor)
        assert dropped > 0
        remaining = server.hot.paths()
        assert len(remaining) == pinned_before - dropped
        for path in remaining:
            key = SegmentKey.from_path("/".join(path.split("/")[3:]))
            assert successor.owns("node-0", "clip", key)

    def test_stale_map_is_rejected(self, tier):
        stale = ShardMap(nodes=NODES, replication_factor=2, version=0 + 1)
        newer = stale.with_nodes(NODES)  # version 2
        handle = tier.handles["node-0"]
        handle.update_shard_map(newer, tier.node_urls)
        with pytest.raises(ValueError, match="refusing to roll back"):
            handle.update_shard_map(stale, tier.node_urls)

    def test_map_change_clears_the_peer_cache(self, session_db, tier):
        manifest = session_db.storage.build_manifest("clip")
        key = next(
            key
            for key in sorted(manifest.segment_sizes, key=lambda k: k.to_path())
            if not tier.shard_map.owns("node-0", "clip", key)
        )
        with HttpSegmentClient(tier.node_urls["node-0"]) as client:
            client.fetch_segment("clip", key)
            tier.handles["node-0"].update_shard_map(
                tier.shard_map.with_nodes(NODES), tier.node_urls
            )
            client.fetch_segment("clip", key)
        # Two peer fetches: the second read missed because the topology
        # change invalidated the cached copy.
        assert tier.counter("node-0", "serve.peer_fetches") == 2
        assert tier.counter("node-0", "serve.peer_cache_hits") == 0


class TestManifestPublication:
    def test_manifest_carries_the_shard_map(self, tier):
        with HttpSegmentClient(tier.node_urls["node-1"]) as client:
            manifest = client.fetch_manifest("clip")
        assert manifest.shard_map == tier.shard_map

    def test_client_adopts_a_published_map(self, tier):
        registry = MetricsRegistry()
        client = FailoverSegmentClient(
            list(tier.node_urls.values()), registry=registry
        )
        try:
            assert client.shard_map is None
            client.fetch_manifest("clip")
            assert client.shard_map == tier.shard_map
            assert registry.counter("failover.shard_map_adopted").total() == 1
        finally:
            client.close()
