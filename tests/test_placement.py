"""Property suite for the consistent-hash shard placement layer.

These tests pin the four contracts the sharded delivery fabric rests on:

* **Determinism** — the same map yields the same owners in every process,
  under every ``PYTHONHASHSEED``, regardless of node construction order.
* **Bounded movement** — adding or removing one node migrates at most a
  small multiple of ``keys / nodes`` keys; everything else stays put.
* **Full coverage** — every key always has exactly
  ``min(replication_factor, len(nodes))`` distinct live owners; routing
  never loses a key.
* **Partitioning** — ``materialize_shards`` gives every node the full
  metadata set but only its owned segment payloads, byte-identical.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Quality
from repro.serve.placement import (
    HashRing,
    ShardMap,
    _parse_segment_file,
    materialize_shards,
    stable_hash,
)
from repro.stream.dash import SegmentKey

# -- strategies ------------------------------------------------------------

node_sets = st.lists(
    st.integers(min_value=0, max_value=63).map(lambda i: f"node-{i}"),
    min_size=1,
    max_size=8,
    unique=True,
)

segment_keys = st.builds(
    SegmentKey,
    st.integers(min_value=0, max_value=500),
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    st.sampled_from(list(Quality)),
)

shard_maps = st.builds(
    ShardMap,
    nodes=node_sets.map(tuple),
    replication_factor=st.integers(min_value=1, max_value=4),
    version=st.integers(min_value=1, max_value=9),
    vnodes=st.just(64),
)

# A fixed key population for movement bounds: large enough for the law of
# large numbers, small enough to keep the suite fast.
KEY_POPULATION = [
    SegmentKey(window, (row, col), quality)
    for window in range(25)
    for row, col in ((0, 0), (0, 1), (1, 0), (1, 1))
    for quality in (Quality.HIGH, Quality.LOW)
]


class TestStableHash:
    def test_pinned_golden_values(self):
        # Literals computed once and pinned: any change to the hash breaks
        # every deployed shard map, so it must never drift.
        assert stable_hash("") == 15724779818122431245
        assert stable_hash("clip/0/0/0/high") == 6197821834217773500
        assert stable_hash("node-0#0") == 8472445936761618833

    def test_is_sha1_prefix(self):
        import hashlib

        token = "any/segment/token"
        expected = int.from_bytes(hashlib.sha1(token.encode()).digest()[:8], "big")
        assert stable_hash(token) == expected

    @given(st.text(max_size=64))
    def test_fits_in_64_bits(self, token):
        assert 0 <= stable_hash(token) < 2**64

    def test_survives_hash_randomisation(self):
        # Python's own hash() is salted per process; placement must not be.
        # Run the same owner computation under two different seeds and
        # compare against the in-process answer.
        program = (
            "from repro.serve.placement import ShardMap\n"
            "from repro.stream.dash import SegmentKey\n"
            "from repro.video.quality import Quality\n"
            "m = ShardMap(nodes=('node-0', 'node-1', 'node-2'), replication_factor=2)\n"
            "keys = [SegmentKey(w, (0, 1), Quality.HIGH) for w in range(4)]\n"
            "print([m.owners('clip', k) for k in keys])\n"
        )
        local = ShardMap(nodes=("node-0", "node-1", "node-2"), replication_factor=2)
        expected = repr(
            [local.owners("clip", SegmentKey(w, (0, 1), Quality.HIGH)) for w in range(4)]
        )
        src = Path(__file__).resolve().parent.parent / "src"
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(src), "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            assert result.stdout.strip() == expected


class TestHashRing:
    def test_rejects_empty_node_set(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError):
            HashRing(["a", "b", "a"])

    def test_rejects_non_positive_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_rejects_non_positive_owner_count(self):
        with pytest.raises(ValueError):
            HashRing(["a", "b"]).owners("k", 0)

    def test_owner_count_clamps_to_node_count(self):
        ring = HashRing(["a", "b", "c"])
        owners = ring.owners("some-key", 10)
        assert len(owners) == 3
        assert sorted(owners) == ["a", "b", "c"]

    @given(nodes=node_sets, count=st.integers(1, 6), token=st.text(max_size=40))
    def test_owners_distinct_subset_exact_size(self, nodes, count, token):
        owners = HashRing(nodes).owners(token, count)
        assert len(owners) == min(count, len(nodes))
        assert len(set(owners)) == len(owners)
        assert set(owners) <= set(nodes)

    @given(nodes=st.permutations(["n0", "n1", "n2", "n3", "n4"]))
    def test_construction_order_is_irrelevant(self, nodes):
        shuffled = HashRing(nodes)
        canonical = HashRing(["n0", "n1", "n2", "n3", "n4"])
        for window in range(10):
            token = f"v/{window}/0/0/high"
            assert shuffled.owners(token, 2) == canonical.owners(token, 2)

    def test_vnodes_spread_load(self):
        # 4 nodes x 1000 keys: every node should carry a non-trivial share.
        # Deterministic (fixed hash), so an exact floor is safe to pin.
        ring = HashRing(["a", "b", "c", "d"], vnodes=64)
        share = {node: 0 for node in ring.nodes}
        for index in range(1000):
            share[ring.owners(f"key-{index}", 1)[0]] += 1
        assert min(share.values()) >= 50  # >= 5% each; perfect split is 250


class TestShardMapDeterminism:
    @given(shard_map=shard_maps, key=segment_keys)
    def test_identical_maps_agree(self, shard_map, key):
        twin = ShardMap(
            nodes=shard_map.nodes,
            replication_factor=shard_map.replication_factor,
            version=shard_map.version,
            vnodes=shard_map.vnodes,
        )
        assert shard_map.owners("clip", key) == twin.owners("clip", key)

    def test_pinned_golden_owners(self):
        shard_map = ShardMap(nodes=("node-0", "node-1", "node-2"), replication_factor=2)
        golden = {
            0: ("node-2", "node-0"),
            1: ("node-0", "node-2"),
            2: ("node-2", "node-1"),
            3: ("node-1", "node-2"),
        }
        for window, expected in golden.items():
            key = SegmentKey(window, (0, 1), Quality.HIGH)
            assert shard_map.owners("clip", key) == expected

    def test_segment_token_excludes_version(self):
        # Reingest bumps segment versions; owners must not move when it does.
        key = SegmentKey(3, (1, 0), Quality.LOW)
        token = ShardMap.segment_token("clip", key)
        assert token == f"clip/{key.to_path()}"
        assert "v" + "1" not in token.split("/")[-1]  # quality label only


class TestShardMapCoverage:
    @given(shard_map=shard_maps, key=segment_keys)
    def test_every_key_has_exact_owner_count(self, shard_map, key):
        owners = shard_map.owners("clip", key)
        assert len(owners) == min(shard_map.replication_factor, len(shard_map.nodes))
        assert len(set(owners)) == len(owners)
        assert set(owners) <= set(shard_map.nodes)

    @given(shard_map=shard_maps, key=segment_keys, video=st.sampled_from(["a", "clip"]))
    def test_routing_never_loses_a_key(self, shard_map, key, video):
        owners = shard_map.owners(video, key)
        assert owners, "every key must route somewhere"
        primary = owners[0]
        assert shard_map.owns(primary, video, key)

    @given(shard_map=shard_maps, key=segment_keys)
    def test_owns_agrees_with_owners(self, shard_map, key):
        owners = set(shard_map.owners("clip", key))
        for node in shard_map.nodes:
            assert shard_map.owns(node, "clip", key) == (node in owners)


class TestBoundedMovement:
    @settings(max_examples=25)
    @given(width=st.integers(min_value=2, max_value=6))
    def test_single_join_moves_few_keys(self, width):
        nodes = tuple(f"node-{i}" for i in range(width))
        before = ShardMap(nodes=nodes, replication_factor=2)
        after = before.with_nodes(nodes + ("node-new",))
        moved = sum(
            1
            for key in KEY_POPULATION
            if set(before.owners("clip", key)) != set(after.owners("clip", key))
        )
        # The newcomer takes ~ rf * keys / (n + 1); allow 3x for variance.
        budget = 3.0 * before.replication_factor * len(KEY_POPULATION) / (width + 1)
        assert moved <= budget

    @settings(max_examples=25)
    @given(width=st.integers(min_value=3, max_value=7))
    def test_single_leave_moves_few_keys(self, width):
        nodes = tuple(f"node-{i}" for i in range(width))
        before = ShardMap(nodes=nodes, replication_factor=2)
        after = before.with_nodes(nodes[:-1])
        moved = sum(
            1
            for key in KEY_POPULATION
            if set(before.owners("clip", key)) != set(after.owners("clip", key))
        )
        budget = 3.0 * before.replication_factor * len(KEY_POPULATION) / width
        assert moved <= budget

    @given(width=st.integers(min_value=2, max_value=6))
    def test_surviving_owner_sets_only_shrink_or_gain_newcomer(self, width):
        # A join may hand keys *to* the new node but must never shuffle
        # ownership between two old nodes.
        nodes = tuple(f"node-{i}" for i in range(width))
        before = ShardMap(nodes=nodes, replication_factor=2)
        after = before.with_nodes(nodes + ("node-new",))
        for key in KEY_POPULATION[:50]:
            old = set(before.owners("clip", key))
            new = set(after.owners("clip", key))
            assert new - old <= {"node-new"}


class TestShardMapLifecycle:
    def test_with_nodes_bumps_version(self):
        shard_map = ShardMap(nodes=("a", "b"), replication_factor=2, version=4)
        successor = shard_map.with_nodes(("a", "b", "c"))
        assert successor.version == 5
        assert successor.replication_factor == 2
        assert successor.vnodes == shard_map.vnodes

    @given(shard_map=shard_maps)
    def test_json_round_trip(self, shard_map):
        clone = ShardMap.from_json(shard_map.to_json())
        assert clone == shard_map
        key = SegmentKey(7, (0, 0), Quality.HIGH)
        assert clone.owners("clip", key) == shard_map.owners("clip", key)

    def test_pickle_round_trip_with_cached_ring(self):
        shard_map = ShardMap(nodes=("a", "b", "c"))
        key = SegmentKey(1, (1, 1), Quality.LOW)
        shard_map.owners("clip", key)  # force the lazy ring cache
        clone = pickle.loads(pickle.dumps(shard_map))
        assert clone == shard_map
        assert clone.owners("clip", key) == shard_map.owners("clip", key)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": ()},
            {"nodes": ("a", "a")},
            {"nodes": ("a",), "replication_factor": 0},
            {"nodes": ("a",), "version": 0},
            {"nodes": ("a",), "vnodes": 0},
        ],
    )
    def test_validation_rejects_bad_maps(self, kwargs):
        with pytest.raises(ValueError):
            ShardMap(**kwargs)


class TestMaterializeShards:
    def test_partitions_segments_and_replicates_metadata(self, session_db, tmp_path):
        storage = session_db.storage
        shard_map = ShardMap(nodes=("node-0", "node-1", "node-2"), replication_factor=2)
        node_roots = {node: tmp_path / node for node in shard_map.nodes}
        placed = materialize_shards(storage, node_roots, shard_map)

        # Other session-scoped tests may have stored derived videos into
        # this catalog; the partitioner covers every listed video, so the
        # audit below must too.
        root = Path(storage.catalog.root)
        manifest = storage.build_manifest("clip")
        total_expected = 0
        for name in storage.list_videos():
            for entry in sorted((root / name).rglob("*")):
                if not entry.is_file():
                    continue
                relative = entry.relative_to(root)
                if entry.parent.name == "segments":
                    key, _ = _parse_segment_file(entry.name)
                    owners = shard_map.owners(name, key)
                    total_expected += len(owners)
                    for node in shard_map.nodes:
                        copy = node_roots[node] / relative
                        if node in owners:
                            assert copy.read_bytes() == entry.read_bytes()
                        else:
                            assert not copy.exists()
                else:
                    for node in shard_map.nodes:
                        assert (
                            node_roots[node] / relative
                        ).read_bytes() == entry.read_bytes()
        assert sum(placed.values()) == total_expected
        assert total_expected >= 2 * len(manifest.segment_sizes)

    def test_every_node_can_build_the_manifest(self, session_db, tmp_path):
        from repro.core.storage import StorageManager

        storage = session_db.storage
        shard_map = ShardMap(nodes=("node-0", "node-1"), replication_factor=1)
        node_roots = {node: tmp_path / node for node in shard_map.nodes}
        materialize_shards(storage, node_roots, shard_map)
        reference = storage.build_manifest("clip")
        for node in shard_map.nodes:
            local = StorageManager(node_roots[node]).build_manifest("clip")
            assert local.segment_sizes == reference.segment_sizes

    def test_missing_node_root_is_an_error(self, session_db, tmp_path):
        shard_map = ShardMap(nodes=("node-0", "node-1"))
        with pytest.raises(ValueError):
            materialize_shards(session_db.storage, {"node-0": tmp_path}, shard_map)

    @pytest.mark.parametrize(
        "name",
        ["notes.txt", "g1_r0_c0.seg", "g00001_r0_c0_high_v1.bin", "x00001_r0_c0_high_v1.seg"],
    )
    def test_parse_rejects_foreign_files(self, name):
        with pytest.raises(ValueError):
            _parse_segment_file(name)

    def test_parse_round_trips_real_names(self):
        key = SegmentKey(3, (1, 2), Quality.HIGH)
        parsed, version = _parse_segment_file(key.file_name(7))
        assert parsed == key
        assert version == 7
