"""Tests for tile popularity and popularity-driven partial storage."""

import math

import numpy as np
import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    Viewport,
)
from repro.core.errors import IngestError
from repro.core.popularity import StoragePlanner, tile_popularity
from repro.predict.traces import Trace, circular_pan_trace
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

GRID = TileGrid(2, 4)
QUALITIES = (Quality.HIGH, Quality.LOW)


def equatorial_trace(duration=4.0):
    return circular_pan_trace(duration, rate=10.0, period=1e9)  # static at equator


class TestTilePopularity:
    def test_probabilities_in_unit_range(self):
        traces = ViewerPopulation(seed=1).traces(2, duration=4.0, rate=10.0)
        popularity = tile_popularity(traces, GRID, Viewport())
        assert popularity.shape == (2, 4)
        assert np.all((popularity >= 0) & (popularity <= 1))

    def test_static_gaze_marks_its_tiles(self):
        popularity = tile_popularity([equatorial_trace()], GRID, Viewport())
        # The viewer stares at theta=0 on the equator forever.
        gazed = GRID.tile_of(0.0, math.pi / 2)
        assert popularity[gazed] == pytest.approx(1.0)
        far_side = GRID.tile_of(math.pi, math.pi / 2)
        assert popularity[far_side] < 0.5

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            tile_popularity([], GRID, Viewport())

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            tile_popularity([equatorial_trace()], GRID, Viewport(), samples_per_second=0)


class TestStoragePlanner:
    def test_hot_tiles_get_full_ladder(self):
        planner = StoragePlanner(QUALITIES, hot_threshold=0.5)
        popularity = np.zeros((2, 4))
        popularity[0, 0] = 0.9
        plan = planner.plan(popularity, GRID)
        assert plan[(0, 0)] == QUALITIES
        assert plan[(1, 3)] == (Quality.LOW,)

    def test_every_tile_keeps_a_rung(self):
        planner = StoragePlanner(QUALITIES, hot_threshold=1.1)  # nothing is hot
        plan = planner.plan(np.zeros((2, 4)), GRID)
        assert all(ladder for ladder in plan.values())

    def test_cold_rungs_count(self):
        planner = StoragePlanner(
            (Quality.HIGH, Quality.MEDIUM, Quality.LOW), hot_threshold=2.0, cold_rungs=2
        )
        plan = planner.plan(np.zeros((2, 4)), GRID)
        assert plan[(0, 0)] == (Quality.MEDIUM, Quality.LOW)

    def test_validation(self):
        with pytest.raises(ValueError):
            StoragePlanner(())
        with pytest.raises(ValueError):
            StoragePlanner((Quality.LOW, Quality.HIGH))
        with pytest.raises(ValueError):
            StoragePlanner(QUALITIES, hot_threshold=2.0, cold_rungs=0)
        with pytest.raises(ValueError):
            StoragePlanner(QUALITIES, hot_threshold=-0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            StoragePlanner(QUALITIES).plan(np.zeros((3, 3)), GRID)

    def test_storage_saved(self):
        plan = {(0, 0): QUALITIES, (0, 1): (Quality.LOW,)}
        sizes = {
            ((0, 0), Quality.HIGH): 100,
            ((0, 0), Quality.LOW): 20,
            ((0, 1), Quality.HIGH): 100,
            ((0, 1), Quality.LOW): 20,
        }
        saved = StoragePlanner.storage_saved(plan, sizes)
        assert saved == pytest.approx(100 / 240)


class TestPartialStorageEndToEnd:
    @pytest.fixture()
    def partial_db(self, db):
        # Hot: the front equatorial tiles; cold: everything else.
        plan = {
            tile: (QUALITIES if tile in {(1, 0), (0, 0)} else (Quality.LOW,))
            for tile in GRID.tiles()
        }
        config = IngestConfig(grid=GRID, qualities=QUALITIES, gop_frames=4, fps=4.0)
        frames = synthetic_video("venice", width=128, height=64, fps=4, duration=2, seed=6)
        db.ingest("clip", frames, config, quality_plan=plan)
        return db

    def test_partial_ingest_skips_cold_high(self, partial_db):
        meta = partial_db.meta("clip")
        assert (0, (0, 0), Quality.HIGH) in meta.entries
        assert (0, (0, 1), Quality.HIGH) not in meta.entries
        assert (0, (0, 1), Quality.LOW) in meta.entries

    def test_partial_store_is_smaller(self, db):
        config = IngestConfig(grid=GRID, qualities=QUALITIES, gop_frames=4, fps=4.0)
        frames = list(
            synthetic_video("venice", width=128, height=64, fps=4, duration=2, seed=6)
        )
        db.ingest("full", iter(frames), config)
        plan = {tile: (Quality.LOW,) for tile in GRID.tiles()}
        db.ingest("cold", iter(frames), config, quality_plan=plan)
        assert db.storage.total_bytes("cold") < db.storage.total_bytes("full") / 2

    def test_manifest_resolves_missing_rungs(self, partial_db):
        manifest = partial_db.storage.build_manifest("clip")
        assert manifest.resolve(0, (0, 0), Quality.HIGH) is Quality.HIGH
        assert manifest.resolve(0, (0, 1), Quality.HIGH) is Quality.LOW
        assert manifest.available(0, (0, 1)) == (Quality.LOW,)

    def test_serving_partial_store_works(self, partial_db):
        trace = equatorial_trace(duration=2.0)
        report = partial_db.serve(
            "clip",
            (
                trace,
                SessionConfig(
                    policy=PredictiveTilingPolicy(),
                    bandwidth=ConstantBandwidth(1e6),
                    predictor="static",
                    margin=0,
                ),
            ),
        )
        assert len(report.records) == 2
        # Shipped qualities are always stored qualities.
        meta = partial_db.meta("clip")
        for record in report.records:
            for tile, quality in record.quality_map.items():
                assert (record.window, tile, quality) in meta.entries

    def test_naive_on_partial_store_degrades_cold_tiles(self, partial_db):
        trace = equatorial_trace(duration=2.0)
        report = partial_db.serve(
            "clip",
            (
                trace,
                SessionConfig(
                    policy=NaiveFullQuality(), bandwidth=ConstantBandwidth(1e6)
                ),
            ),
        )
        record = report.records[0]
        assert record.quality_map[(0, 0)] is Quality.HIGH
        assert record.quality_map[(0, 1)] is Quality.LOW  # resolved down

    def test_append_preserves_plan(self, partial_db):
        more = synthetic_video("venice", width=128, height=64, fps=4, duration=1, seed=7)
        meta = partial_db.append("clip", more)
        assert (2, (0, 0), Quality.HIGH) in meta.entries
        assert (2, (0, 1), Quality.HIGH) not in meta.entries

    def test_plan_validation_at_ingest(self, db):
        config = IngestConfig(grid=GRID, qualities=QUALITIES, gop_frames=4, fps=4.0)
        frames = synthetic_video("venice", width=128, height=64, fps=4, duration=1, seed=6)
        with pytest.raises(IngestError):
            db.ingest("bad", frames, config, quality_plan={(0, 0): ()})
        with pytest.raises(IngestError):
            db.ingest(
                "bad2",
                frames,
                config,
                quality_plan={(0, 0): (Quality.THUMBNAIL,)},
            )
