"""Unit tests for the prediction service."""

import pytest

from repro.core.predictor import PREDICTOR_KINDS, PredictionService
from repro.geometry.grid import TileGrid
from repro.predict.predictors import (
    DeadReckoningPredictor,
    LinearRegressionPredictor,
    MarkovPredictor,
    OraclePredictor,
    StaticPredictor,
)
from repro.predict.traces import HeadMovementModel, circular_pan_trace


@pytest.fixture()
def service() -> PredictionService:
    return PredictionService()


class TestFactory:
    def test_static(self, service):
        assert isinstance(service.session_predictor("static"), StaticPredictor)

    def test_deadreckoning(self, service):
        assert isinstance(
            service.session_predictor("deadreckoning"), DeadReckoningPredictor
        )

    def test_linear(self, service):
        assert isinstance(service.session_predictor("linear"), LinearRegressionPredictor)

    def test_oracle_requires_trace(self, service):
        with pytest.raises(ValueError):
            service.session_predictor("oracle")

    def test_oracle(self, service):
        trace = circular_pan_trace(2.0)
        predictor = service.session_predictor("oracle", trace=trace)
        assert isinstance(predictor, OraclePredictor)
        assert predictor.trace is trace

    def test_unknown_kind(self, service):
        with pytest.raises(ValueError):
            service.session_predictor("psychic")

    def test_kind_list_is_complete(self, service):
        trace = circular_pan_trace(2.0)
        grid = TileGrid(2, 2)
        service.train("v", grid, [trace])
        for kind in PREDICTOR_KINDS:
            service.session_predictor(kind, video="v", grid=grid, trace=trace)


class TestMarkovTraining:
    def test_markov_requires_training(self, service):
        with pytest.raises(ValueError):
            service.session_predictor("markov", video="v", grid=TileGrid(2, 2))

    def test_markov_requires_video_and_grid(self, service):
        with pytest.raises(ValueError):
            service.session_predictor("markov")

    def test_trained_sessions_share_matrix(self, service):
        grid = TileGrid(2, 4)
        corpus = HeadMovementModel().generate_corpus(3, 10.0, rate=10.0, seed=2)
        service.train("v", grid, corpus)
        assert service.is_trained("v", grid)
        a = service.session_predictor("markov", video="v", grid=grid)
        b = service.session_predictor("markov", video="v", grid=grid)
        assert isinstance(a, MarkovPredictor)
        assert a is not b
        assert a.transitions is b.transitions

    def test_training_is_per_video_and_grid(self, service):
        grid = TileGrid(2, 2)
        service.train("v", grid, [circular_pan_trace(5.0)])
        assert not service.is_trained("v", TileGrid(4, 4))
        assert not service.is_trained("w", grid)
