"""Tests for the VRQL textual query language."""

import math

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.query import Encode, Map, Scan, Select, Store, Union
from repro.core.vrql import parse, register_udf
from repro.video.quality import Quality


class TestParsing:
    def test_bare_scan(self):
        expr = parse("SCAN(venice)")
        assert expr == Scan("venice")

    def test_scan_with_quality_and_version(self):
        expr = parse("SCAN(venice, quality=low, version=2)")
        assert expr == Scan("venice", quality=Quality.LOW, version=2)

    def test_case_insensitive_operators(self):
        assert parse("scan(v)") == Scan("v")

    def test_pipeline(self):
        expr = parse("SCAN(v) >> SELECT(time=0:2) >> STORE(out)")
        assert isinstance(expr, Store)
        assert expr.name == "out"
        assert isinstance(expr.source, Select)
        assert expr.source.time == (0.0, 2.0)
        assert expr.source.source == Scan("v")

    def test_select_multiple_dimensions(self):
        expr = parse("SCAN(v) >> SELECT(time=1:3, theta=0:pi, phi=0:pi/2)")
        assert expr.time == (1.0, 3.0)
        assert expr.theta == (0.0, pytest.approx(math.pi))
        assert expr.phi == (0.0, pytest.approx(math.pi / 2))

    def test_pi_arithmetic(self):
        expr = parse("SCAN(v) >> SELECT(theta=pi/4:3*pi/2)")
        lo, hi = expr.theta
        assert lo == pytest.approx(math.pi / 4)
        assert hi == pytest.approx(3 * math.pi / 2)

    def test_map_builtin(self):
        from repro.core import udfs

        expr = parse("SCAN(v) >> MAP(grayscale)")
        assert isinstance(expr, Map)
        assert expr.fn is udfs.grayscale

    def test_encode(self):
        expr = parse("SCAN(v) >> ENCODE(lowest)")
        assert isinstance(expr, Encode)
        assert expr.quality is Quality.LOWEST

    def test_union_of_two_scans(self):
        expr = parse("UNION(SCAN(a), SCAN(b))")
        assert expr == Union(Scan("a"), Scan("b"))

    def test_union_n_ary_left_associates(self):
        expr = parse("UNION(SCAN(a), SCAN(b), SCAN(c))")
        assert expr == Union(Union(Scan("a"), Scan("b")), Scan("c"))

    def test_union_with_nested_pipeline(self):
        expr = parse("UNION(SCAN(a), SCAN(b) >> SELECT(theta=0:pi))")
        assert isinstance(expr.right, Select)

    def test_pipe_into_union(self):
        expr = parse("SCAN(a) >> UNION(SCAN(b))")
        assert expr == Union(Scan("a"), Scan("b"))

    def test_whitespace_insensitive(self):
        tight = parse("SCAN(v)>>SELECT(time=0:1)")
        spaced = parse("  SCAN( v )  >>  SELECT( time = 0 : 1 )  ")
        assert tight == spaced


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse("   ")

    def test_unknown_operator(self):
        with pytest.raises(QueryError, match="unknown operator"):
            parse("SCAN(v) >> FROBNICATE()")

    def test_unknown_udf(self):
        with pytest.raises(QueryError, match="unknown UDF"):
            parse("SCAN(v) >> MAP(nonexistent)")

    def test_select_without_source(self):
        with pytest.raises(QueryError, match="needs an input"):
            parse("SELECT(time=0:1)")

    def test_scan_cannot_be_piped_into(self):
        with pytest.raises(QueryError, match="cannot be piped"):
            parse("SCAN(a) >> SCAN(b)")

    def test_select_requires_dimension(self):
        with pytest.raises(QueryError, match="at least one"):
            parse("SCAN(v) >> SELECT()")

    def test_select_rejects_unknown_dimension(self):
        with pytest.raises(QueryError, match="unexpected arguments"):
            parse("SCAN(v) >> SELECT(depth=0:1)")

    def test_select_rejects_scalar_bounds(self):
        with pytest.raises(QueryError, match="lo:hi"):
            parse("SCAN(v) >> SELECT(time=3)")

    def test_trailing_garbage(self):
        with pytest.raises(QueryError, match="trailing"):
            parse("SCAN(v) extra")

    def test_unbalanced_parens(self):
        with pytest.raises(QueryError):
            parse("SCAN(v")

    def test_union_needs_two(self):
        with pytest.raises(QueryError, match="at least two"):
            parse("UNION(SCAN(a))")

    def test_division_by_zero(self):
        with pytest.raises(QueryError, match="division by zero"):
            parse("SCAN(v) >> SELECT(theta=0:pi/0)")

    def test_bad_quality(self):
        with pytest.raises(QueryError, match="unknown quality"):
            parse("SCAN(v, quality=ultra)")

    def test_untokenisable_input(self):
        with pytest.raises(QueryError, match="tokenise"):
            parse("SCAN(v) >> SELECT(time=0:1) @")


class TestRegistry:
    def test_register_udf(self):
        def flip(frame):
            return frame

        register_udf("flip_test", flip)
        expr = parse("SCAN(v) >> MAP(flip_test)")
        assert expr.fn is flip

    def test_register_rejects_bad_name(self):
        with pytest.raises(ValueError):
            register_udf("no spaces", lambda frame: frame)


class TestExecution:
    def test_vrql_end_to_end(self, session_db):
        result = session_db.vrql(
            "SCAN(clip) >> SELECT(time=0:1) >> MAP(grayscale) >> STORE(vrql_gray)"
        )
        assert "store:catalog" in result.stats.operator_paths
        assert "vrql_gray" in session_db.list_videos()
        window = session_db.storage.decode_window(
            "vrql_gray", 0, session_db.meta("vrql_gray").qualities[0]
        )
        assert np.all(np.abs(window[0].u.astype(int) - 128) < 8)

    def test_vrql_homomorphic_select(self, session_db):
        result = session_db.vrql("SCAN(clip) >> SELECT(theta=0:pi)")
        assert "select.angular:homomorphic-tile" in result.stats.operator_paths
        assert result.stats.decode_ops == 0

    def test_vrql_union_execution(self, session_db):
        result = session_db.vrql(
            "UNION(SCAN(clip, quality=low), SCAN(clip) >> SELECT(theta=0:pi))"
        )
        window = result.value.windows[0]
        assert window.tile_quality(0, 0) is Quality.HIGH  # right operand won
        assert window.tile_quality(0, 1) is Quality.LOW


class TestFormatting:
    def test_format_simple_scan(self):
        from repro.core.vrql import format_expr

        assert format_expr(Scan("v")) == "SCAN(v)"

    def test_format_pipeline_round_trip(self):
        from repro.core.vrql import format_expr

        text = "SCAN(v, quality=low) >> SELECT(time=0:2, theta=0:pi) >> MAP(blur) >> ENCODE(lowest) >> STORE(out)"
        expr = parse(text)
        assert parse(format_expr(expr)) == expr

    def test_format_union_round_trip(self):
        from repro.core.vrql import format_expr

        expr = parse("UNION(SCAN(a), SCAN(b) >> SELECT(phi=pi/4:pi/2))")
        assert parse(format_expr(expr)) == expr

    def test_format_prefers_pi_fractions(self):
        from repro.core.vrql import format_expr

        text = format_expr(parse("SCAN(v) >> SELECT(theta=pi/2:3*pi/2)"))
        assert "pi/2" in text and "3*pi/2" in text

    def test_format_unregistered_udf_uses_name(self):
        from repro.core.query import Map
        from repro.core.vrql import format_expr

        def custom(frame):
            return frame

        text = format_expr(Map(Scan("v"), fn=custom))
        assert "MAP(custom)" in text


class TestPartitionDiscretizeSyntax:
    def test_parse_partition(self):
        from repro.core.query import Partition

        expr = parse("SCAN(v) >> PARTITION(2)")
        assert isinstance(expr, Partition)
        assert expr.seconds == 2.0

    def test_parse_discretize(self):
        from repro.core.query import Discretize

        expr = parse("SCAN(v) >> DISCRETIZE(15)")
        assert isinstance(expr, Discretize)
        assert expr.fps == 15.0

    def test_partition_round_trip(self):
        from repro.core.vrql import format_expr

        expr = parse("SCAN(v) >> PARTITION(2) >> DISCRETIZE(5) >> STORE(out)")
        assert parse(format_expr(expr)) == expr

    def test_partition_requires_number(self):
        with pytest.raises(QueryError):
            parse("SCAN(v) >> PARTITION(fast)")
