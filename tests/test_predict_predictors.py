"""Unit tests for the head-orientation predictors."""

import math

import numpy as np
import pytest

from repro.geometry.grid import TileGrid
from repro.geometry.sphere import great_circle_distance
from repro.geometry.viewport import Orientation, Viewport
from repro.predict.predictors import (
    DeadReckoningPredictor,
    LinearRegressionPredictor,
    MarkovPredictor,
    OraclePredictor,
    StaticPredictor,
)
from repro.predict.traces import HeadMovementModel, Trace, circular_pan_trace


def feed(predictor, times, thetas, phis):
    for time, theta, phi in zip(times, thetas, phis):
        predictor.observe(time, Orientation(theta, phi))


class TestBaseProtocol:
    def test_requires_observation_before_predict(self):
        with pytest.raises(RuntimeError):
            StaticPredictor().predict(1.0)

    def test_observations_must_be_ordered(self):
        predictor = StaticPredictor()
        predictor.observe(1.0, Orientation(0, 1))
        with pytest.raises(ValueError):
            predictor.observe(1.0, Orientation(0, 1))

    def test_history_window_trims(self):
        predictor = StaticPredictor(history_window=1.0)
        feed(predictor, [0.0, 0.5, 2.0], [0.1, 0.2, 0.3], [1.0, 1.0, 1.0])
        assert len(predictor._history) == 1  # only t=2.0 survives

    def test_reset_clears(self):
        predictor = StaticPredictor()
        predictor.observe(0.0, Orientation(0, 1))
        predictor.reset()
        with pytest.raises(RuntimeError):
            predictor.predict(1.0)

    def test_rejects_bad_history_window(self):
        with pytest.raises(ValueError):
            StaticPredictor(history_window=0.0)


class TestStaticPredictor:
    def test_holds_last_pose(self):
        predictor = StaticPredictor()
        feed(predictor, [0.0, 1.0], [0.5, 0.9], [1.0, 1.1])
        predicted = predictor.predict(5.0)
        assert predicted.theta == pytest.approx(0.9)
        assert predicted.phi == pytest.approx(1.1)


class TestDeadReckoning:
    def test_extrapolates_constant_velocity(self):
        predictor = DeadReckoningPredictor()
        times = np.arange(0, 1.05, 0.1)
        feed(predictor, times, 0.5 * times, np.full_like(times, math.pi / 2))
        predicted = predictor.predict(2.0)
        assert predicted.theta == pytest.approx(1.0, abs=0.02)

    def test_single_observation_falls_back_to_static(self):
        predictor = DeadReckoningPredictor()
        predictor.observe(0.0, Orientation(1.0, 1.0))
        assert predictor.predict(3.0).theta == pytest.approx(1.0)

    def test_handles_seam_crossing_velocity(self):
        predictor = DeadReckoningPredictor()
        times = np.arange(0, 1.05, 0.1)
        thetas = (2 * math.pi - 0.2 + 0.4 * times) % (2 * math.pi)
        feed(predictor, times, thetas, np.full_like(times, math.pi / 2))
        predicted = predictor.predict(1.5)
        expected = (2 * math.pi - 0.2 + 0.4 * 1.5) % (2 * math.pi)
        assert great_circle_distance(
            predicted.theta, predicted.phi, expected, math.pi / 2
        ) < 0.05

    def test_phi_clamped_at_pole(self):
        predictor = DeadReckoningPredictor()
        times = np.arange(0, 1.05, 0.1)
        feed(predictor, times, np.zeros_like(times), np.maximum(0.5 - 0.45 * times, 0.01))
        assert predictor.predict(3.0).phi >= 0.0


class TestLinearRegression:
    def test_matches_clean_linear_motion(self):
        predictor = LinearRegressionPredictor(ridge=1e-6)
        times = np.arange(0, 2.05, 0.1)
        feed(predictor, times, 0.3 * times, math.pi / 2 + 0.05 * times)
        predicted = predictor.predict(3.0)
        assert predicted.theta == pytest.approx(0.9, abs=0.02)
        assert predicted.phi == pytest.approx(math.pi / 2 + 0.15, abs=0.02)

    def test_heavy_ridge_approaches_static(self):
        rigid = LinearRegressionPredictor(ridge=1e9)
        times = np.arange(0, 2.05, 0.1)
        feed(rigid, times, 0.3 * times, np.full_like(times, 1.0))
        predicted = rigid.predict(4.0)
        # Slope shrunk to ~0: prediction stays near the window mean/last.
        assert abs(predicted.theta - 0.6) < 0.15

    def test_few_samples_fall_back_to_static(self):
        predictor = LinearRegressionPredictor()
        feed(predictor, [0.0, 0.1], [1.0, 2.0], [1.0, 1.0])
        assert predictor.predict(1.0).theta == pytest.approx(2.0)

    def test_rejects_negative_ridge(self):
        with pytest.raises(ValueError):
            LinearRegressionPredictor(ridge=-1.0)


class TestMarkovPredictor:
    def make_trained(self, grid=TileGrid(2, 4)) -> MarkovPredictor:
        predictor = MarkovPredictor(grid, step_duration=0.5)
        corpus = HeadMovementModel().generate_corpus(4, 20.0, rate=10.0, seed=9)
        predictor.train(corpus)
        return predictor

    def test_requires_training(self):
        predictor = MarkovPredictor(TileGrid(2, 2))
        predictor.observe(0.0, Orientation(0, 1))
        with pytest.raises(RuntimeError):
            predictor.predict(1.0)

    def test_train_requires_traces(self):
        with pytest.raises(ValueError):
            MarkovPredictor(TileGrid(2, 2)).train([])

    def test_transitions_are_stochastic(self):
        predictor = self.make_trained()
        matrix = predictor.transitions
        assert matrix.shape == (8, 8)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= 0)

    def test_zero_horizon_predicts_current_tile(self):
        predictor = self.make_trained()
        predictor.observe(10.0, Orientation(1.0, math.pi / 2))
        predicted = predictor.predict(10.0)
        grid = predictor.grid
        assert grid.tile_of(predicted.theta, predicted.phi) == grid.tile_of(
            1.0, math.pi / 2
        )

    def test_coverage_bounds_validated(self):
        with pytest.raises(ValueError):
            MarkovPredictor(TileGrid(2, 2), coverage=0.0)

    def test_from_transitions_shares_matrix(self):
        predictor = self.make_trained()
        clone = MarkovPredictor.from_transitions(predictor.grid, predictor.transitions)
        assert clone.transitions is predictor.transitions

    def test_from_transitions_validates_shape(self):
        with pytest.raises(ValueError):
            MarkovPredictor.from_transitions(TileGrid(2, 2), np.eye(3))

    def test_predict_tiles_grid_mismatch(self):
        predictor = self.make_trained()
        predictor.observe(0.0, Orientation(0.0, 1.0))
        with pytest.raises(ValueError):
            predictor.predict_tiles(1.0, TileGrid(8, 8), Viewport())

    def test_predict_tiles_covers_probability_mass(self):
        predictor = self.make_trained()
        predictor.observe(0.0, Orientation(0.0, math.pi / 2))
        tiles = predictor.predict_tiles(0.5, predictor.grid, Viewport(), margin=0)
        assert tiles  # non-empty
        assert tiles <= set(predictor.grid.tiles())


class TestOraclePredictor:
    def test_returns_ground_truth(self):
        trace = circular_pan_trace(10.0, rate=10.0, period=10.0)
        predictor = OraclePredictor(trace)
        predictor.observe(0.0, Orientation(0, 1))
        predicted = predictor.predict(2.5)
        truth = trace.orientation_at(2.5)
        assert predicted.theta == pytest.approx(truth.theta)
        assert predicted.phi == pytest.approx(truth.phi)


class TestPredictTiles:
    def test_margin_grows_set(self):
        predictor = StaticPredictor()
        predictor.observe(0.0, Orientation(math.pi, math.pi / 2))
        grid = TileGrid(8, 8)
        narrow_viewport = Viewport(fov_theta=0.5, fov_phi=0.5)
        without = predictor.predict_tiles(1.0, grid, narrow_viewport, margin=0)
        with_margin = predictor.predict_tiles(1.0, grid, narrow_viewport, margin=1)
        assert without < with_margin

    def test_accuracy_on_predictable_motion(self):
        """Dead reckoning on a constant pan should beat static at 2 s."""
        trace = circular_pan_trace(20.0, rate=10.0, period=10.0)
        static_error = self._mean_error(StaticPredictor(), trace)
        reckoning_error = self._mean_error(DeadReckoningPredictor(), trace)
        assert reckoning_error < static_error / 3

    @staticmethod
    def _mean_error(predictor, trace, horizon=2.0) -> float:
        errors = []
        for index in range(len(trace)):
            time = float(trace.times[index])
            predictor.observe(
                time, Orientation(float(trace.thetas[index]), float(trace.phis[index]))
            )
            target = time + horizon
            if index >= 10 and target <= trace.times[-1]:
                predicted = predictor.predict(target)
                truth = trace.orientation_at(target)
                errors.append(
                    great_circle_distance(
                        predicted.theta, predicted.phi, truth.theta, truth.phi
                    )
                )
        return float(np.mean(errors))


class TestHybridPredictor:
    def test_holds_pose_during_fixation(self):
        from repro.predict.predictors import HybridPredictor

        predictor = HybridPredictor(speed_gate=0.5)
        rng = np.random.default_rng(0)
        for step in range(10):
            predictor.observe(
                step * 0.1,
                Orientation(1.0 + rng.normal(0, 0.01), math.pi / 2 + rng.normal(0, 0.01)),
            )
        predicted = predictor.predict(2.0)
        assert great_circle_distance(
            predicted.theta, predicted.phi, 1.0, math.pi / 2
        ) < 0.05

    def test_extrapolates_during_pursuit(self):
        from repro.predict.predictors import HybridPredictor

        predictor = HybridPredictor(speed_gate=0.5, damping=1.0)
        times = np.arange(0, 0.45, 0.05)
        feed(predictor, times, 1.0 * times, np.full_like(times, math.pi / 2))
        predicted = predictor.predict(1.0)
        # Moving at 1 rad/s: prediction should be well ahead of the last pose.
        assert predicted.theta > 0.6

    def test_few_samples_fall_back_to_static(self):
        from repro.predict.predictors import HybridPredictor

        predictor = HybridPredictor()
        predictor.observe(0.0, Orientation(2.0, 1.0))
        assert predictor.predict(1.0).theta == pytest.approx(2.0)

    def test_validation(self):
        from repro.predict.predictors import HybridPredictor

        with pytest.raises(ValueError):
            HybridPredictor(speed_gate=-1.0)
        with pytest.raises(ValueError):
            HybridPredictor(damping=0.0)
        with pytest.raises(ValueError):
            HybridPredictor(damping=1.5)

    def test_beats_static_at_short_horizon_on_mixed_traces(self):
        from repro.predict.evaluate import orientation_error_by_horizon
        from repro.predict.predictors import HybridPredictor
        from repro.workloads.users import ViewerPopulation

        traces = ViewerPopulation(seed=7).traces(2, duration=40.0, rate=10.0)
        hybrid_error = 0.0
        static_error = 0.0
        for trace in traces:
            hybrid_error += orientation_error_by_horizon(
                HybridPredictor(), trace, [0.5]
            )[0.5]
            static_error += orientation_error_by_horizon(
                StaticPredictor(), trace, [0.5]
            )[0.5]
        assert hybrid_error < static_error
