"""Tests for version retention, vacuum, stats, RTT, and trace I/O."""

import math

import numpy as np
import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    Quality,
    SessionConfig,
    TileGrid,
)
from repro.core.errors import CatalogError
from repro.predict.traces import Trace, circular_pan_trace
from repro.stream.network import SimulatedLink
from repro.workloads.videos import synthetic_video

CONFIG = IngestConfig(
    grid=TileGrid(2, 2),
    qualities=(Quality.HIGH,),
    gop_frames=4,
    fps=4.0,
)


@pytest.fixture()
def versioned(db):
    """A video with three versions (ingest + two appends)."""
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=1, seed=41)
    db.ingest("clip", frames, CONFIG)
    for seed in (42, 43):
        more = synthetic_video("venice", width=64, height=32, fps=4, duration=1, seed=seed)
        db.append("clip", more)
    return db


class TestVacuum:
    def test_vacuum_keeps_latest_fully_readable(self, versioned):
        before = versioned.meta("clip")
        files, freed = versioned.vacuum("clip", keep_versions=1)
        assert files == 0  # appends share files; nothing is unreferenced
        assert freed == 0
        after = versioned.meta("clip")
        assert after.entries == before.entries
        for gop in range(after.gop_count):
            versioned.storage.read_segment("clip", gop, (0, 0), Quality.HIGH)

    def test_vacuum_drops_old_metadata(self, versioned):
        versioned.vacuum("clip", keep_versions=1)
        assert versioned.storage.catalog.versions("clip") == [3]
        with pytest.raises(CatalogError):
            versioned.meta("clip", version=1)

    def test_vacuum_after_overwrite_frees_bytes(self, versioned):
        # A full re-store supersedes every old segment file.
        meta = versioned.meta("clip")
        windows = [
            versioned.storage.read_window(
                "clip", gop, {tile: Quality.HIGH for tile in meta.grid.tiles()}
            )
            for gop in range(meta.gop_count)
        ]
        versioned.storage.store_windows("clip", windows, fps=meta.fps)
        files, freed = versioned.vacuum("clip", keep_versions=1)
        assert files > 0
        assert freed > 0
        latest = versioned.meta("clip")
        for gop in range(latest.gop_count):
            versioned.storage.read_segment("clip", gop, (1, 1), Quality.HIGH)

    def test_vacuum_keep_two(self, versioned):
        versioned.vacuum("clip", keep_versions=2)
        assert versioned.storage.catalog.versions("clip") == [2, 3]

    def test_vacuum_validates_keep(self, versioned):
        with pytest.raises(ValueError):
            versioned.vacuum("clip", keep_versions=0)

    def test_vacuum_missing_video(self, db):
        with pytest.raises(CatalogError):
            db.vacuum("ghost")


class TestStats:
    def test_stats_shape(self, versioned):
        snapshot = versioned.stats()
        assert "clip" in snapshot["videos"]
        info = snapshot["videos"]["clip"]
        assert info["version"] == 3
        assert info["versions"] == 3
        assert info["bytes"] == versioned.storage.total_bytes("clip")
        assert snapshot["cache"]["capacity"] > 0

    def test_stats_counts_cache_activity(self, versioned):
        versioned.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
        versioned.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
        cache = versioned.stats()["cache"]
        assert cache["entries"] >= 1
        assert cache["hit_rate"] > 0

    def test_stats_empty_db(self, db):
        snapshot = db.stats()
        assert snapshot["videos"] == {}


class TestRtt:
    def test_rtt_delays_first_byte(self):
        link = SimulatedLink(ConstantBandwidth(100.0), rtt=0.5)
        assert link.transfer(100, 0.0) == pytest.approx(1.5)

    def test_rtt_charged_per_request(self):
        link = SimulatedLink(ConstantBandwidth(100.0), rtt=0.5)
        link.transfer(100, 0.0)
        assert link.transfer(100, 0.0) == pytest.approx(3.0)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            SimulatedLink(ConstantBandwidth(1.0), rtt=-0.1)

    def test_session_with_rtt_still_completes(self, session_db):
        from repro.workloads.users import ViewerPopulation

        trace = ViewerPopulation(seed=2).trace(0, duration=3.0, rate=10.0)
        report = session_db.serve(
            "clip",
            (
                trace,
                SessionConfig(
                    policy=NaiveFullQuality(),
                    bandwidth=ConstantBandwidth(1e6),
                    rtt=0.05,
                ),
            ),
        )
        assert len(report.records) == 3
        # RTT shows up in delivery times: never faster than one RTT.
        assert all(
            record.delivered_time - record.request_time >= 0.05
            for record in report.records
        )


class TestTraceCsv:
    def test_round_trip(self, tmp_path):
        trace = circular_pan_trace(2.0, rate=5.0)
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = Trace.load_csv(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.thetas, trace.thetas)
        assert np.array_equal(loaded.phis, trace.phis)

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,1,2\n")
        with pytest.raises(ValueError, match="header"):
            Trace.load_csv(path)

    def test_field_count_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,theta,phi\n0,1\n")
        with pytest.raises(ValueError, match="3 fields"):
            Trace.load_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,theta,phi\n0,one,2\n")
        with pytest.raises(ValueError):
            Trace.load_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,theta,phi\n0.0,1.0,1.5\n\n1.0,1.1,1.5\n")
        loaded = Trace.load_csv(path)
        assert len(loaded) == 2


class TestCliVacuumStats:
    def test_cli_commands(self, tmp_path, capsys):
        from repro.cli import main

        root = ["--root", str(tmp_path / "db")]
        assert (
            main(
                root
                + [
                    "ingest", "demo", "--width", "64", "--height", "32",
                    "--duration", "1", "--fps", "4", "--grid", "2x2",
                    "--gop-frames", "4", "--qualities", "high",
                ]
            )
            == 0
        )
        assert main(root + ["vacuum", "demo"]) == 0
        assert "vacuumed" in capsys.readouterr().out
        assert main(root + ["stats"]) == 0
        out = capsys.readouterr().out
        assert "demo: v1" in out
        assert "cache:" in out
