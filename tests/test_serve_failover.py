"""The replicated delivery tier: breakers, budgets, and failover.

Unit tests drive the three policy pieces with fake clocks and scripted
fake clients; the integration tests run a real two-replica tier and kill
one server mid-use. Everything observable stays inside the PR 3 error
taxonomy — the failover layer must never leak a raw ``OSError``.
"""

import time

import pytest

from repro.core.errors import SegmentNotFoundError, TransientSegmentError
from repro.obs import MetricsRegistry
from repro.serve import (
    CircuitBreaker,
    FailoverConfig,
    FailoverSegmentClient,
    RetryBudget,
    ServerConfig,
    serve_session,
    start_server,
)
from repro.serve.failover import CLOSED, HALF_OPEN, LEGAL_TRANSITIONS, OPEN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_rejects_until_reset_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow()
        assert not breaker.allow()  # probe already in flight
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_transition_trail_is_monotone_per_incident(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()  # probe fails: incident continues
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()  # probe heals: incident over
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert all(edge in LEGAL_TRANSITIONS for edge in breaker.transitions)


class TestRetryBudget:
    def test_spend_drains_and_denies_when_dry(self):
        budget = RetryBudget(capacity=2.0, refill=0.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2
        assert budget.denied == 1

    def test_successes_earn_back_capped_at_capacity(self):
        budget = RetryBudget(capacity=2.0, refill=0.5)
        budget.try_spend()
        budget.try_spend()
        budget.earn()
        assert not budget.try_spend()  # 0.5 tokens: not a whole attempt
        budget.earn()
        assert budget.try_spend()
        for _ in range(100):
            budget.earn()
        assert budget.tokens == 2.0


class FakeReplicaClient:
    """A scripted HttpSegmentClient double; ``script`` maps url -> a
    callable producing (or raising) the per-request outcome."""

    scripts: dict = {}

    def __init__(self, base_url, timeout=10.0):
        self.base_url = base_url
        self.timeout = timeout
        self.calls = 0
        self.closed = False

    def _serve(self):
        self.calls += 1
        outcome = self.scripts[self.base_url](self.calls)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def fetch_manifest(self, name):
        return self._serve()

    def fetch_segment(self, name, key):
        return self._serve()

    def fetch_metrics(self):
        return self._serve()

    def healthy(self):
        try:
            return bool(self._serve())
        except TransientSegmentError:
            return False

    def close(self):
        self.closed = True


@pytest.fixture()
def scripted():
    def build(script, config=None, registry=None):
        FakeReplicaClient.scripts = script
        return FailoverSegmentClient(
            list(script),
            config=config
            or FailoverConfig(failure_threshold=2, reset_timeout=0.0),
            registry=registry,
            client_factory=FakeReplicaClient,
        )

    yield build
    FakeReplicaClient.scripts = {}


class TestFailoverPolicy:
    def test_transient_error_fails_over_to_the_sibling(self, scripted):
        client = scripted(
            {
                "a": lambda call: TransientSegmentError("a down"),
                "b": lambda call: b"payload",
            }
        )
        with client:
            assert client.fetch_segment("v", None) == b"payload"
        assert client.budget.spent == 1

    def test_not_found_is_authoritative_and_never_fails_over(self, scripted):
        client = scripted(
            {
                "a": lambda call: SegmentNotFoundError("gone"),
                "b": lambda call: b"payload",
            }
        )
        with client:
            with pytest.raises(SegmentNotFoundError):
                client.fetch_segment("v", None)
        assert client.replicas.replicas[1].client.calls == 0

    def test_breaker_opens_and_traffic_routes_around(self, scripted):
        client = scripted(
            {
                "a": lambda call: TransientSegmentError("a down"),
                "b": lambda call: b"payload",
            }
        )
        with client:
            for _ in range(8):
                assert client.fetch_segment("v", None) == b"payload"
            replica_a = client.replicas.replicas[0]
            assert replica_a.breaker.state == OPEN
            # Once open (after 2 consecutive failures), a never sees
            # traffic again while b is healthy.
            assert replica_a.client.calls == 2

    def test_retry_after_deprioritises_the_shedding_replica(self, scripted):
        clock = FakeClock()
        shedding = TransientSegmentError("shed")
        shedding.retry_after = 30.0
        client = scripted(
            {
                "a": lambda call: shedding if call == 1 else b"from-a",
                "b": lambda call: b"from-b",
            },
            config=FailoverConfig(
                failure_threshold=5, reset_timeout=0.0, clock=clock
            ),
        )
        with client:
            assert client.fetch_segment("v", None) == b"from-b"  # a shed, b served
            # While the hint holds, the rotation never lands on a.
            for _ in range(4):
                assert client.fetch_segment("v", None) == b"from-b"
            clock.advance(31.0)
            results = {client.fetch_segment("v", None) for _ in range(2)}
            assert b"from-a" in results  # backoff expired: a rotates back in

    def test_dry_budget_fails_fast_with_the_last_error(self, scripted):
        client = scripted(
            {
                "a": lambda call: TransientSegmentError("a down"),
                "b": lambda call: TransientSegmentError("b down"),
                "c": lambda call: TransientSegmentError("c down"),
            },
            config=FailoverConfig(
                failure_threshold=99, reset_timeout=0.0, retry_budget=1.0,
                retry_refill=0.0,
            ),
        )
        with client:
            with pytest.raises(TransientSegmentError):
                client.fetch_segment("v", None)
            total_calls = sum(
                replica.client.calls for replica in client.replicas.replicas
            )
            # One free first attempt + one budgeted failover, not three.
            assert total_calls == 2
            assert client.budget.denied >= 1

    def test_all_circuits_open_still_probes_one_replica(self, scripted):
        client = scripted(
            {"a": lambda call: TransientSegmentError("down") if call <= 2 else b"ok"},
            config=FailoverConfig(failure_threshold=2, reset_timeout=0.0),
        )
        with client:
            with pytest.raises(TransientSegmentError):
                client.fetch_segment("v", None)
            with pytest.raises(TransientSegmentError):
                client.fetch_segment("v", None)
            assert client.replicas.replicas[0].breaker.state == OPEN
            assert client.fetch_segment("v", None) == b"ok"  # half-open probe
            assert client.replicas.replicas[0].breaker.state == CLOSED

    def test_hedge_races_a_slow_primary(self, scripted):
        def slow_then_ok(call):
            time.sleep(0.5)
            return b"slow"

        client = scripted(
            {"a": slow_then_ok, "b": lambda call: b"fast"},
            config=FailoverConfig(
                failure_threshold=3, reset_timeout=0.0, hedge_delay=0.05
            ),
        )
        with client:
            started = time.perf_counter()
            results = {client.fetch_segment("v", None) for _ in range(2)}
        assert b"fast" in results
        assert time.perf_counter() - started < 2.0
        assert client.metrics.counter("failover.hedges").total() >= 1

    def test_close_closes_every_replica_client(self, scripted):
        client = scripted({"a": lambda call: b"x", "b": lambda call: b"y"})
        client.close()
        assert all(replica.client.closed for replica in client.replicas.replicas)


class TestFailoverOverRealServers:
    def test_killed_replica_is_absorbed_and_circuits_stay_legal(self, session_db):
        handles = [
            start_server(session_db.storage, ServerConfig(drain_timeout=1.0))
            for _ in range(2)
        ]
        try:
            manifest = session_db.storage.build_manifest("clip")
            keys = sorted(manifest.segment_sizes, key=lambda k: k.to_path())
            client = FailoverSegmentClient(
                [handle.base_url for handle in handles],
                config=FailoverConfig(
                    failure_threshold=2, reset_timeout=0.0, request_timeout=2.0
                ),
            )
            with client:
                assert client.fetch_manifest("clip").window_count
                handles[0].stop()  # the outage
                for key in keys:
                    expected = session_db.storage.read_segment(
                        "clip", key.window, key.tile, key.quality
                    )
                    assert client.fetch_segment("clip", key) == expected
                assert client.healthy()
                for url, edges in client.breaker_transitions().items():
                    assert all(edge in LEGAL_TRANSITIONS for edge in edges)
        finally:
            for handle in handles:
                handle.stop()

    def test_serve_session_accepts_a_replica_list(self, session_db):
        from repro.core.streamer import SessionConfig
        from repro.stream.abr import UniformAdaptive
        from repro.stream.network import ConstantBandwidth
        from repro.workloads.users import ViewerPopulation

        meta = session_db.meta("clip")
        trace = ViewerPopulation(seed=3).trace(0, duration=meta.duration, rate=10.0)
        config = SessionConfig(
            policy=UniformAdaptive(), bandwidth=ConstantBandwidth(40_000.0)
        )
        handles = [start_server(session_db.storage) for _ in range(2)]
        try:
            registry = MetricsRegistry()
            report = serve_session(
                [handle.base_url for handle in handles],
                "clip",
                trace,
                config,
                registry=registry,
            )
            assert len(report.records) == meta.gop_count
            assert registry.counter("failover.requests").total() > 0
        finally:
            for handle in handles:
                handle.stop()
