"""The wire-level chaos proxy, and the client surviving it.

Each fault kind is driven against a real :class:`SegmentServer` through
a real :class:`ChaosProxy`, with a real :class:`HttpSegmentClient` on
the other end. The contract under test is threefold: every wire fault
surfaces as a taxonomy error (never a raw ``OSError``), the client
never hangs past its request budget (slow-loris included), and no
sockets leak across a batch of faulted requests.
"""

import json
import os
import time

import pytest

from repro.chaos import ChaosProxy, FaultPlan, FaultRule, Scenario, ScenarioRunner
from repro.core.errors import SegmentReadTimeout, TransientSegmentError
from repro.serve import HttpSegmentClient, start_server
from repro.stream.dash import SegmentKey


def _first_key(storage, name="clip"):
    manifest = storage.build_manifest(name)
    return sorted(manifest.segment_sizes, key=lambda k: k.to_path())[0]


@pytest.fixture()
def upstream(session_db):
    handle = start_server(session_db.storage)
    try:
        yield handle
    finally:
        handle.stop()


def _proxy(handle, rules=None, seed=7):
    plan = FaultPlan(seed=seed, rules=list(rules)) if rules else None
    return ChaosProxy(handle.address, plan=plan)


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


class TestPassthrough:
    def test_relays_bytes_identically(self, session_db, upstream):
        key = _first_key(session_db.storage)
        direct = session_db.storage.read_segment(
            "clip", key.window, key.tile, key.quality
        )
        with _proxy(upstream) as proxy:
            with HttpSegmentClient(proxy.base_url, timeout=5.0) as client:
                assert client.fetch_segment("clip", key) == direct
                manifest = client.fetch_manifest("clip")
                assert manifest.segment_sizes[key] == len(direct)

    def test_keep_alive_survives_many_requests(self, session_db, upstream):
        key = _first_key(session_db.storage)
        with _proxy(upstream) as proxy:
            with HttpSegmentClient(proxy.base_url, timeout=5.0) as client:
                bodies = {client.fetch_segment("clip", key) for _ in range(10)}
        assert len(bodies) == 1


class TestWireFaults:
    def test_refuse_and_reset_are_transient(self, session_db, upstream):
        key = _first_key(session_db.storage)
        rules = [
            FaultRule(kind="refuse", target="wire", calls=(1,)),
            FaultRule(kind="reset", target="wire", calls=(2,)),
        ]
        with _proxy(upstream, rules) as proxy:
            for _ in range(2):
                with HttpSegmentClient(proxy.base_url, timeout=5.0) as client:
                    with pytest.raises(TransientSegmentError):
                        client.fetch_segment("clip", key)

    def test_truncation_mid_body_is_transient_not_a_hang(self, session_db, upstream):
        key = _first_key(session_db.storage)
        rules = [FaultRule(kind="truncate", target="wire", every=1, fraction=0.5)]
        with _proxy(upstream, rules) as proxy:
            with HttpSegmentClient(proxy.base_url, timeout=5.0) as client:
                started = time.perf_counter()
                with pytest.raises(TransientSegmentError, match="IncompleteRead"):
                    client.fetch_segment("clip", key)
        assert time.perf_counter() - started < 5.0

    def test_slow_loris_times_out_within_the_request_budget(
        self, session_db, upstream
    ):
        key = _first_key(session_db.storage)
        # One byte per 50 ms beats any per-recv timeout; only the total
        # request deadline can catch it.
        rules = [FaultRule(kind="trickle", target="wire", every=1, delay=0.05)]
        with _proxy(upstream, rules) as proxy:
            with HttpSegmentClient(proxy.base_url, timeout=0.5) as client:
                started = time.perf_counter()
                with pytest.raises(SegmentReadTimeout):
                    client.fetch_segment("clip", key)
                elapsed = time.perf_counter() - started
        assert 0.4 < elapsed < 3.0

    def test_delay_adds_latency_but_stays_clean(self, session_db, upstream):
        key = _first_key(session_db.storage)
        direct = session_db.storage.read_segment(
            "clip", key.window, key.tile, key.quality
        )
        rules = [FaultRule(kind="delay", target="wire", every=1, delay=0.1)]
        with _proxy(upstream, rules) as proxy:
            with HttpSegmentClient(proxy.base_url, timeout=5.0) as client:
                started = time.perf_counter()
                assert client.fetch_segment("clip", key) == direct
                assert time.perf_counter() - started >= 0.1

    def test_faulted_batch_leaks_no_sockets(self, session_db, upstream):
        key = _first_key(session_db.storage)
        rules = [
            FaultRule(kind="truncate", target="wire", every=2, fraction=0.3),
            FaultRule(kind="reset", target="wire", every=3),
        ]
        with _proxy(upstream, rules) as proxy:
            # Warm up allocator/socket machinery before the baseline.
            with HttpSegmentClient(proxy.base_url, timeout=2.0) as client:
                for _ in range(3):
                    try:
                        client.fetch_segment("clip", key)
                    except TransientSegmentError:
                        pass
            time.sleep(0.2)
            before = _open_fds()
            for _ in range(12):
                with HttpSegmentClient(proxy.base_url, timeout=2.0) as client:
                    try:
                        client.fetch_segment("clip", key)
                    except TransientSegmentError:
                        pass
            # Proxy threads race their own close; give them a beat.
            time.sleep(0.2)
            after = _open_fds()
        assert after <= before + 3, f"fd count grew {before} -> {after}"


class TestWireScenarios:
    def test_wire_flaky_plan_is_deterministic(self):
        first = ScenarioRunner(Scenario.load("plans/wire-flaky.json")).run()
        assert first.ok, [check for check in first.checks if not check.ok]
        second = ScenarioRunner(Scenario.load("plans/wire-flaky.json")).run()
        assert first.dumps() == second.dumps()

    def test_replica_outage_completes_with_zero_degradation(self):
        report = ScenarioRunner(Scenario.load("plans/replica-outage.json")).run()
        assert report.ok, [check for check in report.checks if not check.ok]
        payload = json.loads(report.dumps())
        assert payload["metrics"]["degradations"] == 0
        assert payload["metrics"]["failover"]["failovers"] > 0
        trails = payload["metrics"]["breaker_transitions"]
        assert trails["replica-0"] and not trails["replica-1"]
