"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.angles import (
    TWO_PI,
    angular_difference,
    theta_interval_contains,
    unwrap_theta,
    wrap_theta,
)
from repro.geometry.grid import TileGrid
from repro.geometry.sphere import from_unit_vector, great_circle_distance, to_unit_vector
from repro.video.bitstream import BitReader, BitWriter
from repro.video.codec import _entropy_decode, _entropy_encode
from repro.video.frame import Frame
from repro.video.gop import GopCodec, decode_any_gop, gop_byte_length
from repro.video.mp4 import Atom, Mp4File, make_stss, parse_stss
from repro.video.quality import Quality

angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
unit_angles = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9)
polar_angles = st.floats(min_value=0.0, max_value=math.pi)


class TestAngleProperties:
    @given(angles)
    def test_wrap_theta_in_range(self, theta):
        wrapped = wrap_theta(theta)
        assert 0.0 <= wrapped < TWO_PI

    @given(angles)
    def test_wrap_theta_idempotent(self, theta):
        wrapped = wrap_theta(theta)
        assert wrap_theta(wrapped) == pytest.approx(wrapped)

    @given(angles, angles)
    def test_angular_difference_bounded(self, a, b):
        diff = angular_difference(a, b)
        assert -math.pi < diff <= math.pi

    @given(angles, angles)
    def test_angular_difference_recovers_target(self, a, b):
        diff = angular_difference(a, b)
        residual = angular_difference(wrap_theta(b + diff), wrap_theta(a))
        assert abs(residual) < 1e-6

    @given(st.lists(unit_angles, min_size=1, max_size=30))
    def test_unwrap_preserves_wrapped_values(self, thetas):
        unwrapped = unwrap_theta(np.array(thetas))
        # Compare circularly: a value near 0 may unwrap to near -2*pi.
        residual = angular_difference(np.atleast_1d(wrap_theta(unwrapped)), thetas)
        assert np.all(np.abs(residual) < 1e-6)

    @given(unit_angles, unit_angles, unit_angles)
    def test_interval_contains_is_rotation_invariant(self, start, end, probe):
        span = (end - start) % TWO_PI
        # Exact-boundary probes flip under float rotation; not the property
        # under test. Boundary distance is circular.
        offset = (probe - start) % TWO_PI
        assume(min(offset, TWO_PI - offset) > 1e-9)
        assume(abs(offset - span) > 1e-9)
        shift = 1.2345
        base = theta_interval_contains(start, end, probe)
        rotated_start = wrap_theta(start + shift)
        rotated = theta_interval_contains(
            rotated_start,
            rotated_start + span,
            wrap_theta(probe + shift),
        )
        assert base == rotated


class TestSphereProperties:
    @given(unit_angles, polar_angles)
    def test_round_trip(self, theta, phi):
        theta_back, phi_back = from_unit_vector(to_unit_vector(theta, phi))
        assert great_circle_distance(theta, phi, float(theta_back), float(phi_back)) < 1e-6

    @given(unit_angles, polar_angles, unit_angles, polar_angles)
    def test_distance_symmetric_and_bounded(self, t1, p1, t2, p2):
        d12 = great_circle_distance(t1, p1, t2, p2)
        d21 = great_circle_distance(t2, p2, t1, p1)
        assert d12 == pytest.approx(d21)
        assert 0.0 <= d12 <= math.pi + 1e-9

    @given(
        unit_angles, polar_angles, unit_angles, polar_angles, unit_angles, polar_angles
    )
    def test_triangle_inequality(self, t1, p1, t2, p2, t3, p3):
        d12 = great_circle_distance(t1, p1, t2, p2)
        d23 = great_circle_distance(t2, p2, t3, p3)
        d13 = great_circle_distance(t1, p1, t3, p3)
        assert d13 <= d12 + d23 + 1e-6


class TestGridProperties:
    grids = st.tuples(st.integers(1, 8), st.integers(1, 8))

    @given(grids, unit_angles, polar_angles)
    def test_every_direction_has_exactly_one_tile(self, shape, theta, phi):
        grid = TileGrid(*shape)
        # Within a ULP of a grid line, ownership is float-rounding dependent
        # (tile_of and rect().contains compute the boundary differently);
        # exclude that measure-zero set — it is not the invariant under test.
        theta_offset = (theta / grid.theta_step) % 1.0
        phi_offset = (phi / grid.phi_step) % 1.0
        assume(min(theta_offset, 1.0 - theta_offset) > 1e-9)
        assume(phi == math.pi or min(phi_offset, 1.0 - phi_offset) > 1e-9)
        owners = [tile for tile in grid.tiles() if grid.rect(*tile).contains(theta, phi)]
        assert len(owners) == 1
        assert owners[0] == grid.tile_of(theta, phi)

    @given(grids)
    def test_index_bijection(self, shape):
        grid = TileGrid(*shape)
        indices = {grid.index_of(*tile) for tile in grid.tiles()}
        assert indices == set(range(grid.tile_count))

    @given(grids, st.integers(0, 3))
    def test_expand_monotone(self, shape, margin):
        grid = TileGrid(*shape)
        seed_tiles = {(0, 0)}
        smaller = grid.expand(seed_tiles, margin)
        larger = grid.expand(seed_tiles, margin + 1)
        assert smaller <= larger


class TestBitstreamProperties:
    @given(st.lists(st.integers(0, 2**20), max_size=50))
    def test_ue_stream_round_trip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_ue(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_ue() for _ in values] == values

    @given(st.lists(st.integers(-(2**18), 2**18), max_size=50))
    def test_se_stream_round_trip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_se(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_se() for _ in values] == values

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 16)), max_size=40))
    def test_raw_bits_round_trip(self, pairs):
        writer = BitWriter()
        for value, nbits in pairs:
            writer.write(value & ((1 << nbits) - 1), nbits)
        reader = BitReader(writer.getvalue())
        for value, nbits in pairs:
            assert reader.read(nbits) == value & ((1 << nbits) - 1)


class TestEntropyProperties:
    @given(
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30)
    def test_sparse_rows_round_trip(self, block_count, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(-100, 100, (block_count, 64)).astype(np.int32)
        rows[rng.uniform(size=rows.shape) < 0.7] = 0
        assert np.array_equal(_entropy_decode(_entropy_encode(rows), block_count), rows)


class TestCodecProperties:
    @staticmethod
    def _random_frames(seed: int, count: int = 3) -> list[Frame]:
        rng = np.random.default_rng(seed)
        frames = []
        # 32x32: divisible by 16 x the largest ladder downscale factor.
        base = rng.uniform(30, 220, (32, 32))
        for _ in range(count):
            base = np.clip(base + rng.normal(0, 5, base.shape), 0, 255)
            frames.append(Frame.from_luma(base))
        return frames

    @given(st.integers(0, 2**32 - 1), st.sampled_from(list(Quality)))
    @settings(max_examples=15, deadline=None)
    def test_decoder_matches_encoder_reconstruction(self, seed, quality):
        """The encoder's prediction loop must be bit-exact with the decoder
        — the invariant that keeps P-frame chains from drifting."""
        from repro.video.codec import FrameCodec

        frames = self._random_frames(seed)
        codec = FrameCodec(quality)
        reference = None
        for frame in frames:
            data, reconstruction = codec.encode_frame(frame, reference)
            decoded = codec.decode_frame(data, frame.width, frame.height, reference)
            assert decoded.equals(reconstruction)
            reference = reconstruction

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_distortion_monotone_in_quality(self, seed):
        """Coarser quantisation never reduces reconstruction error."""
        from repro.video.frame import mse

        frames = self._random_frames(seed)
        errors = []
        for quality in Quality:  # best first
            codec = GopCodec(quality)
            decoded = codec.decode_gop(codec.encode_gop(frames))
            errors.append(sum(mse(a, b) for a, b in zip(frames, decoded)))
        rungs = list(Quality)
        for index, (better, worse) in enumerate(zip(errors, errors[1:])):
            if rungs[index].downscale != rungs[index + 1].downscale:
                # Across a resolution change the ordering is approximate:
                # on noise-like content both rungs saturate and can tie
                # within a fraction of a percent.
                assert better <= worse * 1.05 + 1e-9
            else:
                assert better <= worse + 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_gop_byte_length_consistent(self, seed):
        rng = np.random.default_rng(seed)
        frames = [
            Frame.from_luma(rng.integers(0, 255, (16, 16)).astype(np.uint8))
            for _ in range(2)
        ]
        data = GopCodec(Quality.LOW).encode_gop(frames)
        assert gop_byte_length(data) == len(data)
        assert len(decode_any_gop(data)) == 2


class TestMp4Properties:
    atom_kinds = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=4, max_size=4
    ).filter(lambda kind: kind not in ("moov", "trak", "vcld", "udta", "tils"))

    @given(st.lists(st.tuples(atom_kinds, st.binary(max_size=64)), max_size=8))
    def test_atom_forest_round_trip(self, spec):
        original = Mp4File(atoms=[Atom(kind, payload=data) for kind, data in spec])
        parsed = Mp4File.parse(original.serialize())
        assert parsed.serialize() == original.serialize()
        assert [a.kind for a in parsed.atoms] == [kind for kind, _ in spec]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**32 - 1),
                st.integers(0, 2**62),
                st.integers(0, 2**62),
            ),
            max_size=20,
        )
    )
    def test_stss_round_trip(self, entries):
        assert parse_stss(make_stss(entries)) == entries


class TestStorageProperties:
    """End-to-end invariants of the storage manager under random configs."""

    configs = st.tuples(
        st.integers(1, 2),  # grid rows
        st.integers(1, 2),  # grid cols
        st.integers(2, 5),  # gop_frames
        st.integers(1, 3),  # whole GOPs of content
        st.integers(0, 3),  # trailing partial frames
        st.integers(1, 2),  # ladder size
    )

    @given(configs, st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_ingest_metadata_round_trip(self, config, seed):
        import math
        import tempfile

        from repro.core.storage import IngestConfig, StorageManager
        from repro.workloads.videos import synthetic_video

        rows, cols, gop_frames, gops, extra, ladder = config
        fps = 4.0
        frame_count = gops * gop_frames + extra
        duration = frame_count / fps
        if frame_count == 0:
            return
        storage = StorageManager(tempfile.mkdtemp(prefix="vc-prop-"))
        ingest = IngestConfig(
            grid=TileGrid(rows, cols),
            qualities=Quality.ladder(ladder),
            gop_frames=gop_frames,
            fps=fps,
        )
        frames = list(
            synthetic_video(
                "venice", width=32 * cols, height=32 * rows, fps=fps,
                duration=duration, seed=seed % 1000,
            )
        )[:frame_count]
        meta = storage.ingest("clip", iter(frames), ingest)

        # Frame accounting is exact.
        assert sum(meta.gop_frame_counts) == frame_count
        assert meta.gop_count == math.ceil(frame_count / gop_frames)
        assert meta.duration == pytest.approx(frame_count / fps)

        # Metadata parsed back from disk is identical.
        storage._meta_cache.clear()
        reloaded = storage.meta("clip")
        assert reloaded.entries == meta.entries
        assert reloaded.gop_frame_counts == meta.gop_frame_counts
        assert reloaded.qualities == meta.qualities

        # The manifest's sizes are the real file sizes, and every window of
        # every quality decodes to the declared frame count.
        manifest = storage.build_manifest("clip")
        for gop in range(meta.gop_count):
            window = storage.read_window(
                "clip",
                gop,
                {tile: meta.qualities[-1] for tile in meta.grid.tiles()},
            )
            assert window.byte_size == manifest.window_size(
                gop, {tile: meta.qualities[-1] for tile in meta.grid.tiles()}
            )
            decoded = window.decode()
            assert len(decoded) == meta.gop_frame_counts[gop]
            assert decoded[0].width == 32 * cols

        # The temporal index covers the whole video exactly once.
        covered = meta.gops_overlapping(0.0, meta.duration)
        assert covered == list(range(meta.gop_count))
