"""The chaos harness itself: seeded determinism, fault scheduling,
wrapper behavior, the scenario runner, and the CLI entry point.

Determinism is the harness's load-bearing property — a chaos run that
cannot be replayed is flakiness, not a regression suite — so most tests
here run things twice and demand identical output.
"""

import json

import pytest

from repro import ConstantBandwidth, Quality, SessionConfig, UniformAdaptive
from repro.chaos import (
    ChaosSegmentCache,
    ChaosStorageManager,
    FaultPlan,
    FaultRule,
    Scenario,
    ScenarioRunner,
)
from repro.cli import main
from repro.core.errors import (
    SegmentCorruptError,
    SegmentNotFoundError,
    SegmentReadTimeout,
    TransientSegmentError,
)
from repro.stream.network import BlackoutBandwidth


class TestFaultRule:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="gremlins", rate=0.5)
        with pytest.raises(ValueError, match="never fires"):
            FaultRule(kind="flaky")
        with pytest.raises(ValueError, match="evict"):
            FaultRule(kind="evict", rate=0.5)  # storage target
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(kind="flaky", calls=(0,))
        with pytest.raises(ValueError, match="media"):
            FaultRule(kind="flaky", rate=0.5, media=(2.0, 1.0))

    def test_filters(self):
        rule = FaultRule(
            kind="missing", rate=1.0, video="clip", tile=(0, 1),
            quality="high", media=(1.0, 2.0),
        )
        assert rule.matches("clip", 3, (0, 1), "high", 1.5)
        assert not rule.matches("other", 3, (0, 1), "high", 1.5)
        assert not rule.matches("clip", 3, (1, 1), "high", 1.5)
        assert not rule.matches("clip", 3, (0, 1), "low", 1.5)
        assert not rule.matches("clip", 3, (0, 1), "high", 2.0)  # half-open
        assert not rule.matches("clip", 3, (0, 1), "high", None)

    def test_json_round_trip(self):
        rule = FaultRule(
            kind="slow", rate=0.25, burst=3, tile=(1, 0), media=(0.5, 1.5),
            delay=0.1, calls=(2, 7),
        )
        assert FaultRule.from_json(rule.to_json()) == rule


class TestFaultPlan:
    def _decisions(self, plan, calls=200):
        plan.reset()
        return [
            plan.decide("clip", i % 4, (i % 2, 0), "high") is not None
            for i in range(calls)
        ]

    def test_same_seed_same_schedule(self):
        make = lambda: FaultPlan(rules=(FaultRule(kind="flaky", rate=0.2),), seed=42)
        assert self._decisions(make()) == self._decisions(make())

    def test_different_seed_different_schedule(self):
        a = FaultPlan(rules=(FaultRule(kind="flaky", rate=0.2),), seed=1)
        b = FaultPlan(rules=(FaultRule(kind="flaky", rate=0.2),), seed=2)
        assert self._decisions(a) != self._decisions(b)

    def test_reset_rewinds_the_schedule(self):
        plan = FaultPlan(rules=(FaultRule(kind="flaky", rate=0.3),), seed=9)
        first = self._decisions(plan)
        assert self._decisions(plan) == first  # _decisions resets

    def test_calls_fire_exactly_where_pinned(self):
        plan = FaultPlan(rules=(FaultRule(kind="missing", calls=(2, 5)),), seed=0)
        fired = [
            plan.decide("v", 0, (0, 0), "high") is not None for _ in range(6)
        ]
        assert fired == [False, True, False, False, True, False]

    def test_every_nth_call(self):
        plan = FaultPlan(rules=(FaultRule(kind="missing", every=3),), seed=0)
        fired = [plan.decide("v", 0, (0, 0), "high") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_burst_sticks_to_the_same_segment(self):
        plan = FaultPlan(rules=(FaultRule(kind="flaky", calls=(1,), burst=3),), seed=0)
        # Three consecutive reads of the same segment fault...
        assert plan.decide("v", 0, (0, 0), "high") is not None
        # ...a different segment slipped in between is untouched...
        assert plan.decide("v", 0, (1, 1), "high") is None
        assert plan.decide("v", 0, (0, 0), "high") is not None
        assert plan.decide("v", 0, (0, 0), "high") is not None
        # ...and the burst then drains.
        assert plan.decide("v", 0, (0, 0), "high") is None

    def test_filtered_rules_do_not_perturb_other_rngs(self):
        # Adding a tightly-filtered rule ahead of a rate rule must not
        # shift the rate rule's draws on unrelated calls.
        base = FaultPlan(rules=(FaultRule(kind="flaky", rate=0.3),), seed=5)
        plan = FaultPlan(
            rules=(
                FaultRule(kind="missing", rate=0.9, video="other-video"),
                FaultRule(kind="flaky", rate=0.3),
            ),
            seed=5,
        )
        base_fired = [
            base.decide("clip", 0, (0, 0), "high") is not None for _ in range(100)
        ]
        plan.reset()
        plan_fired = []
        for _ in range(100):
            decision = plan.decide("clip", 0, (0, 0), "high")
            plan_fired.append(decision is not None and decision.kind == "flaky")
        # Rule 1 of `plan` is seeded "5:1" vs "5:0" for `base`, so the
        # schedules differ — but the *rates* agree and nothing crashes.
        assert sum(plan_fired) > 0 and sum(base_fired) > 0

    def test_injection_accounting(self):
        plan = FaultPlan(rules=(FaultRule(kind="missing", every=2),), seed=0)
        for _ in range(10):
            plan.decide("v", 1, (0, 1), "low")
        assert plan.injected == {"missing": 5}
        assert plan.calls("storage") == 10
        assert plan.log[0]["call"] == 2
        assert plan.log[0]["tile"] == [0, 1]

    def test_json_round_trip_preserves_schedule(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="flaky", rate=0.2, burst=2),),
            seed=77,
            blackouts=((0.5, 1.0),),
            blackout_floor=100.0,
        )
        clone = FaultPlan.loads(plan.dumps())
        assert self._decisions(plan) == self._decisions(clone)
        assert clone.blackouts == ((0.5, 1.0),)
        assert clone.blackout_floor == 100.0

    def test_seed_override_on_load(self):
        plan = FaultPlan(rules=(FaultRule(kind="flaky", rate=0.2),), seed=1)
        override = FaultPlan.loads(plan.dumps(), seed=2)
        assert override.seed == 2
        assert self._decisions(plan) != self._decisions(override)

    def test_blackout_wrapping(self):
        plan = FaultPlan(blackouts=((1.0, 2.0),), blackout_floor=10.0)
        model = plan.apply_to_bandwidth(ConstantBandwidth(1000.0))
        assert isinstance(model, BlackoutBandwidth)
        assert model.rate_at(0.5) == 1000.0
        assert model.rate_at(1.5) == 10.0
        assert model.rate_at(2.5) == 1000.0
        # No blackouts: the model passes through untouched.
        untouched = ConstantBandwidth(5.0)
        assert FaultPlan().apply_to_bandwidth(untouched) is untouched


class TestChaosStorageManager:
    def _wrap(self, session_db, *rules, seed=0):
        return ChaosStorageManager(session_db.storage, FaultPlan(rules=rules, seed=seed))

    @pytest.mark.parametrize(
        "kind,error",
        [
            ("missing", SegmentNotFoundError),
            ("corrupt", SegmentCorruptError),
            ("slow", SegmentReadTimeout),
            ("flaky", TransientSegmentError),
        ],
    )
    def test_fault_kinds_map_to_the_error_contract(self, session_db, kind, error):
        storage = self._wrap(
            session_db, FaultRule(kind=kind, calls=(1,), delay=0.5)
        )
        with pytest.raises(error, match="injected fault"):
            storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
        # The schedule has moved past call 1: the next read is clean.
        assert storage.read_segment("clip", 0, (0, 0), Quality.HIGH)

    def test_clean_reads_delegate_bit_for_bit(self, session_db):
        storage = self._wrap(session_db)
        direct = session_db.storage.read_segment("clip", 0, (0, 0), Quality.HIGH)
        assert storage.read_segment("clip", 0, (0, 0), Quality.HIGH) == direct
        # Non-read attributes delegate too.
        assert storage.meta("clip").gop_count == session_db.meta("clip").gop_count

    def test_read_window_cannot_bypass_injection(self, session_db):
        storage = self._wrap(session_db, FaultRule(kind="missing", calls=(1,)))
        quality_map = {
            tile: Quality.HIGH for tile in session_db.meta("clip").grid.tiles()
        }
        with pytest.raises(SegmentNotFoundError):
            storage.read_window("clip", 0, quality_map)

    def test_slow_within_tolerance_serves_the_bytes(self, session_db):
        plan = FaultPlan(rules=(FaultRule(kind="slow", calls=(1,), delay=0.01),))
        storage = ChaosStorageManager(session_db.storage, plan, slow_tolerance=0.02)
        assert storage.read_segment("clip", 0, (0, 0), Quality.HIGH)

    def test_media_time_filter_reaches_the_rule(self, session_db):
        meta = session_db.meta("clip")
        late = meta.gop_start_time(meta.gop_count - 1)
        storage = self._wrap(
            session_db, FaultRule(kind="missing", rate=1.0, media=(late, late + 10.0))
        )
        assert storage.read_segment("clip", 0, (0, 0), Quality.HIGH)  # early gop clean
        with pytest.raises(SegmentNotFoundError):
            storage.read_segment("clip", meta.gop_count - 1, (0, 0), Quality.HIGH)


class TestChaosSegmentCache:
    def _cache(self):
        from repro.core.cache import LruSegmentCache
        from repro.obs import MetricsRegistry

        return LruSegmentCache(capacity_bytes=1 << 20, registry=MetricsRegistry())

    def test_evict_forces_a_miss(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="evict", target="cache", every=1),), seed=0
        )
        wrapped = ChaosSegmentCache(self._cache(), plan)
        key = ("clip", 0, (0, 0), Quality.HIGH, 1)
        loads = []

        def loader():
            loads.append(1)
            return b"payload"

        wrapped.get_or_load(key, loader)
        wrapped.get_or_load(key, loader)
        assert len(loads) == 2  # every lookup was evicted first
        assert plan.injected.get("evict") == 2

    def test_non_segment_keys_bypass_the_plan(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="evict", target="cache", every=1),), seed=0
        )
        wrapped = ChaosSegmentCache(self._cache(), plan)
        loads = []
        wrapped.get_or_load("opaque-key", lambda: loads.append(1) or b"x")
        wrapped.get_or_load("opaque-key", lambda: loads.append(1) or b"x")
        assert len(loads) == 1  # cached; the plan never saw the key
        assert plan.calls("cache") == 0


def _tiny_scenario(seed=13, **overrides):
    spec = {
        "name": "tiny",
        "seed": seed,
        "video": {"duration": 2.0, "width": 64, "height": 32},
        "sessions": {"count": 2, "mode": "single", "bandwidth": 40000,
                     "policy": "uniform"},
        "invariants": {"expect_degradations": True},
        "plan": {
            "seed": seed,
            "rules": [{"kind": "flaky", "rate": 0.1, "burst": 4}],
        },
    }
    spec.update(overrides)
    return Scenario.from_json(spec)


class TestScenarioRunner:
    def test_end_to_end_invariants_hold(self, tmp_path):
        report = ScenarioRunner(_tiny_scenario(), root=tmp_path).run()
        assert report.ok, report.dumps()
        names = [check.name for check in report.checks]
        assert "no_uncaught_exceptions" in names
        assert "no_silent_upgrade" in names
        assert "cache_disk_consistency" in names
        assert "metrics_events_agree" in names
        assert len(report.events) >= 1

    def test_report_is_seed_deterministic(self, tmp_path):
        first = ScenarioRunner(_tiny_scenario(), root=tmp_path / "a").run()
        second = ScenarioRunner(_tiny_scenario(), root=tmp_path / "b").run()
        assert first.dumps() == second.dumps()

    def test_different_seed_changes_the_run(self, tmp_path):
        first = ScenarioRunner(_tiny_scenario(seed=13), root=tmp_path / "a").run()
        second = ScenarioRunner(_tiny_scenario(seed=14), root=tmp_path / "b").run()
        assert first.dumps() != second.dumps()

    def test_shared_mode_runs(self, tmp_path):
        scenario = _tiny_scenario(
            sessions={"count": 2, "mode": "shared", "bandwidth": 60000,
                      "policy": "uniform"},
        )
        report = ScenarioRunner(scenario, root=tmp_path).run()
        assert report.ok, report.dumps()

    def test_expected_degradations_catches_vacuous_plans(self, tmp_path):
        scenario = _tiny_scenario()
        scenario.plan = FaultPlan(rules=(), seed=13)  # injects nothing
        report = ScenarioRunner(scenario, root=tmp_path).run()
        failed = {check.name for check in report.checks if not check.ok}
        assert failed == {"expected_degradations"}

    def test_scenario_json_round_trip(self):
        scenario = _tiny_scenario()
        clone = Scenario.from_json(scenario.to_json())
        assert clone.to_json() == scenario.to_json()


class TestChaosCli:
    def _write_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(_tiny_scenario().to_json()), encoding="utf-8")
        return path

    def test_cli_is_deterministic_and_exits_zero(self, tmp_path, capsys):
        plan = self._write_plan(tmp_path)
        outputs = []
        for run in ("a.json", "b.json"):
            out = tmp_path / run
            code = main(
                ["--root", str(tmp_path / "db"), "chaos",
                 "--plan", str(plan), "--output", str(out)]
            )
            assert code == 0
            outputs.append(out.read_text(encoding="utf-8"))
        assert outputs[0] == outputs[1]
        report = json.loads(outputs[0])
        assert report["ok"] is True
        assert report["events"]

    def test_cli_seed_override(self, tmp_path):
        plan = self._write_plan(tmp_path)
        out = tmp_path / "seeded.json"
        code = main(
            ["--root", str(tmp_path / "db"), "chaos", "--plan", str(plan),
             "--seed", "99", "--output", str(out)]
        )
        # The overridden seed may or may not satisfy expect_degradations;
        # what must hold is that the report reflects the override.
        assert code in (0, 1)
        assert json.loads(out.read_text(encoding="utf-8"))["seed"] == 99

    def test_cli_exits_nonzero_on_violation(self, tmp_path, capsys):
        scenario = _tiny_scenario()
        spec = scenario.to_json()
        spec["plan"]["rules"] = []  # nothing fires => expect_degradations fails
        plan = tmp_path / "vacuous.json"
        plan.write_text(json.dumps(spec), encoding="utf-8")
        code = main(["--root", str(tmp_path / "db"), "chaos", "--plan", str(plan)])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().err
