"""Unit tests for the segment buffer cache and its storage integration."""

import math

import pytest

from repro.core.cache import LruSegmentCache
from repro.core.storage import IngestConfig, StorageManager
from repro.geometry.grid import TileGrid
from repro.video.quality import Quality
from repro.workloads.videos import synthetic_video


class TestLruCacheBasics:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LruSegmentCache(0)

    def test_miss_then_hit(self):
        cache = LruSegmentCache(100)
        assert cache.get("a") is None
        cache.put("a", b"xyz")
        assert cache.get("a") == b"xyz"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_hit_rate(self):
        cache = LruSegmentCache(100)
        cache.put("a", b"x")
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_nan_without_requests(self):
        assert math.isnan(LruSegmentCache(10).stats.hit_rate)

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            LruSegmentCache(10).put("a", "string")


class TestEviction:
    def test_evicts_least_recently_used(self):
        cache = LruSegmentCache(10)
        cache.put("a", b"aaaa")
        cache.put("b", b"bbbb")
        cache.get("a")  # refresh a
        cache.put("c", b"cccc")  # evicts b
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_size_accounting(self):
        cache = LruSegmentCache(100)
        cache.put("a", b"12345")
        cache.put("b", b"123")
        assert cache.size_bytes == 8
        cache.put("a", b"1")  # replace shrinks
        assert cache.size_bytes == 4

    def test_oversized_value_not_admitted(self):
        cache = LruSegmentCache(4)
        cache.put("big", b"12345")
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_invalidate(self):
        cache = LruSegmentCache(100)
        cache.put("a", b"12")
        cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.size_bytes == 0

    def test_invalidate_prefix(self):
        cache = LruSegmentCache(100)
        cache.put(("v1", 0), b"x")
        cache.put(("v1", 1), b"y")
        cache.put(("v2", 0), b"z")
        cache.invalidate_prefix("v1")
        assert cache.get(("v1", 0)) is None
        assert cache.get(("v2", 0)) == b"z"

    def test_clear(self):
        cache = LruSegmentCache(100)
        cache.put("a", b"12")
        cache.clear()
        assert len(cache) == 0
        assert cache.size_bytes == 0


class TestGetOrLoad:
    def test_loads_on_miss_then_serves_cached(self):
        cache = LruSegmentCache(100)
        calls = []

        def loader():
            calls.append(1)
            return b"payload"

        assert cache.get_or_load("a", loader) == b"payload"
        assert cache.get_or_load("a", loader) == b"payload"
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_loader_exception_propagates_and_releases_key(self):
        cache = LruSegmentCache(100)

        def failing():
            raise OSError("disk gone")

        with pytest.raises(OSError):
            cache.get_or_load("a", failing)
        # The key is released: a later request retries the load.
        assert cache.get_or_load("a", lambda: b"ok") == b"ok"

    def test_oversized_value_returned_but_not_admitted(self):
        cache = LruSegmentCache(4)
        assert cache.get_or_load("big", lambda: b"123456") == b"123456"
        assert len(cache) == 0

    def test_single_flight_under_contention(self):
        """Concurrent misses on one key share one loader call."""
        import threading

        cache = LruSegmentCache(10_000)
        gate = threading.Event()
        load_calls = []
        results = []
        errors = []

        def slow_loader():
            load_calls.append(1)
            gate.wait(timeout=5.0)
            return b"segment-bytes"

        def request():
            try:
                results.append(cache.get_or_load("seg", slow_loader))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Give every thread time to reach the miss; only the leader may load.
        import time

        time.sleep(0.1)
        gate.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        assert results == [b"segment-bytes"] * 8
        assert len(load_calls) == 1
        assert cache.stats.misses == 8
        assert cache.stats.hits == 0

    def test_distinct_keys_load_concurrently(self):
        """One key's in-flight load must not serialise other keys."""
        import threading

        cache = LruSegmentCache(10_000)
        slow_started = threading.Event()
        slow_gate = threading.Event()

        def slow_loader():
            slow_started.set()
            slow_gate.wait(timeout=5.0)
            return b"slow"

        slow_thread = threading.Thread(
            target=lambda: cache.get_or_load("slow-key", slow_loader)
        )
        slow_thread.start()
        assert slow_started.wait(timeout=5.0)
        # While slow-key is mid-load, a different key completes immediately.
        assert cache.get_or_load("fast-key", lambda: b"fast") == b"fast"
        slow_gate.set()
        slow_thread.join(timeout=5.0)
        assert cache.get("slow-key") == b"slow"


class TestInvalidationFencing:
    """Invalidation must cancel in-flight loads, not just cached entries.

    Without the fence, a leader that began loading before an invalidation
    re-populates the cache with stale bytes after it — exactly the
    drop-then-reingest wrong-data scenario."""

    @staticmethod
    def _slow_leader(cache, key, payload=b"stale-bytes"):
        import threading

        started = threading.Event()
        gate = threading.Event()
        results = []

        def loader():
            started.set()
            gate.wait(timeout=5.0)
            return payload

        thread = threading.Thread(
            target=lambda: results.append(cache.get_or_load(key, loader))
        )
        thread.start()
        assert started.wait(timeout=5.0)
        return thread, gate, results

    def test_invalidate_fences_inflight_load(self):
        cache = LruSegmentCache(10_000)
        thread, gate, results = self._slow_leader(cache, "seg")
        cache.invalidate("seg")  # races the in-flight load
        gate.set()
        thread.join(timeout=5.0)
        # The leader still gets its bytes, but they are never published.
        assert results == [b"stale-bytes"]
        assert cache.get("seg") is None
        assert len(cache) == 0
        assert cache.metrics.counter("cache.fenced_loads").total() == 1

    def test_waiters_still_receive_fenced_result(self):
        import threading

        cache = LruSegmentCache(10_000)
        thread, gate, results = self._slow_leader(cache, "seg")
        waiter_results = []
        waiter = threading.Thread(
            target=lambda: waiter_results.append(
                cache.get_or_load("seg", lambda: b"should-not-run")
            )
        )
        waiter.start()
        import time

        time.sleep(0.05)  # let the waiter attach to the flight
        cache.invalidate("seg")
        gate.set()
        thread.join(timeout=5.0)
        waiter.join(timeout=5.0)
        assert results == [b"stale-bytes"]
        # A waiter that attached before the fence may share the leader's
        # result or (having arrived after the fence freed the slot) load
        # fresh; either way it gets bytes and nothing stale is cached.
        assert waiter_results and isinstance(waiter_results[0], bytes)
        assert cache.get("seg") != b"stale-bytes"

    def test_post_invalidation_request_loads_fresh(self):
        cache = LruSegmentCache(10_000)
        thread, gate, results = self._slow_leader(cache, "seg", payload=b"old")
        cache.invalidate("seg")
        # The slot was freed by the fence: a new request becomes a new
        # leader immediately, without waiting on the stale flight.
        assert cache.get_or_load("seg", lambda: b"new") == b"new"
        gate.set()
        thread.join(timeout=5.0)
        assert results == [b"old"]  # stale leader got its own bytes...
        assert cache.get("seg") == b"new"  # ...but the cache kept the fresh ones

    def test_invalidate_prefix_fences_matching_inflight(self):
        cache = LruSegmentCache(10_000)
        thread_a, gate_a, _ = self._slow_leader(cache, ("v1", 0))
        thread_b, gate_b, _ = self._slow_leader(cache, ("v2", 0), payload=b"keep")
        cache.invalidate_prefix("v1")
        gate_a.set()
        gate_b.set()
        thread_a.join(timeout=5.0)
        thread_b.join(timeout=5.0)
        assert cache.get(("v1", 0)) is None  # fenced
        assert cache.get(("v2", 0)) == b"keep"  # untouched prefix cached fine

    def test_clear_fences_all_inflight(self):
        cache = LruSegmentCache(10_000)
        thread_a, gate_a, _ = self._slow_leader(cache, "a")
        thread_b, gate_b, _ = self._slow_leader(cache, "b")
        cache.clear()
        gate_a.set()
        gate_b.set()
        thread_a.join(timeout=5.0)
        thread_b.join(timeout=5.0)
        assert len(cache) == 0
        assert cache.metrics.counter("cache.fenced_loads").total() == 2


@pytest.fixture()
def loaded(tmp_path) -> StorageManager:
    storage = StorageManager(tmp_path)
    config = IngestConfig(
        grid=TileGrid(2, 2),
        qualities=(Quality.HIGH,),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=1, seed=1)
    storage.ingest("clip", frames, config)
    return storage


class TestStorageIntegration:
    def test_repeated_reads_hit_cache(self, loaded):
        loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        assert loaded.segment_cache.stats.hits == 1
        assert loaded.segment_cache.stats.misses == 1

    def test_cached_bytes_identical(self, loaded):
        first = loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        second = loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        assert first == second

    def test_drop_invalidates_cache(self, loaded):
        loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
        loaded.drop("clip")
        assert len(loaded.segment_cache) == 0

    def test_drop_fences_inflight_segment_load(self, loaded):
        """Regression: a segment load that started before ``drop`` must
        not re-populate the cache with the dropped video's bytes."""
        import threading

        cache = loaded.segment_cache
        key = ("clip", 0, (0, 0), Quality.HIGH, 0)
        started = threading.Event()
        gate = threading.Event()
        results = []

        def slow_loader():
            started.set()
            gate.wait(timeout=5.0)
            return b"bytes-from-dropped-version"

        thread = threading.Thread(
            target=lambda: results.append(cache.get_or_load(key, slow_loader))
        )
        thread.start()
        assert started.wait(timeout=5.0)
        loaded.drop("clip")  # invalidate_prefix("clip") fences the flight
        gate.set()
        thread.join(timeout=5.0)
        assert results == [b"bytes-from-dropped-version"]
        # Without the fence this returned the stale payload.
        assert cache.get(key) is None

    def test_cache_can_be_disabled(self, tmp_path):
        storage = StorageManager(tmp_path, cache_bytes=0)
        assert storage.segment_cache is None
        config = IngestConfig(
            grid=TileGrid(1, 1), qualities=(Quality.HIGH,), gop_frames=2, fps=2.0
        )
        frames = synthetic_video("venice", width=32, height=32, fps=2, duration=1, seed=2)
        storage.ingest("clip", frames, config)
        assert storage.read_segment("clip", 0, (0, 0), Quality.HIGH)


class TestThreadSafety:
    def test_concurrent_readers_and_writers(self):
        import threading

        cache = LruSegmentCache(10_000)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for step in range(300):
                    key = (worker_id % 3, step % 20)
                    cache.put(key, bytes(50))
                    cache.get(key)
                    if step % 50 == 0:
                        cache.invalidate_prefix(worker_id % 3)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Internal accounting survived the contention.
        assert cache.size_bytes == sum(len(v) for v in cache._entries.values())

    def test_concurrent_storage_reads(self, loaded):
        import threading

        results = []
        errors = []

        def reader() -> None:
            try:
                for _ in range(50):
                    results.append(
                        loaded.read_segment("clip", 0, (0, 0), Quality.HIGH)
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(results)) == 1  # every read saw identical bytes
