"""Unit tests for prediction-quality metrics."""

import math

import pytest

from repro.geometry.grid import TileGrid
from repro.geometry.viewport import Viewport
from repro.predict.evaluate import (
    TileScores,
    orientation_error_by_horizon,
    tile_prediction_scores,
)
from repro.predict.predictors import OraclePredictor, StaticPredictor
from repro.predict.traces import HeadMovementModel, circular_pan_trace


class TestOrientationError:
    def test_oracle_has_zero_error(self):
        trace = circular_pan_trace(10.0, rate=10.0)
        errors = orientation_error_by_horizon(OraclePredictor(trace), trace, [0.5, 2.0])
        assert errors[0.5] == pytest.approx(0.0, abs=1e-6)
        assert errors[2.0] == pytest.approx(0.0, abs=1e-6)

    def test_static_error_grows_with_horizon(self):
        trace = circular_pan_trace(20.0, rate=10.0, period=10.0)
        errors = orientation_error_by_horizon(StaticPredictor(), trace, [0.5, 1.0, 2.0])
        assert errors[0.5] < errors[1.0] < errors[2.0]

    def test_known_error_for_constant_pan(self):
        # A 10 s period pan moves 2*pi/10 rad/s on the equator; static
        # prediction at horizon h is off by exactly h * omega.
        trace = circular_pan_trace(20.0, rate=20.0, period=10.0)
        errors = orientation_error_by_horizon(StaticPredictor(), trace, [1.0])
        assert errors[1.0] == pytest.approx(2 * math.pi / 10, rel=0.05)

    def test_requires_horizons(self):
        trace = circular_pan_trace(5.0)
        with pytest.raises(ValueError):
            orientation_error_by_horizon(StaticPredictor(), trace, [])

    def test_too_long_horizon_gives_nan(self):
        trace = circular_pan_trace(2.0, rate=10.0)
        errors = orientation_error_by_horizon(StaticPredictor(), trace, [10.0])
        assert math.isnan(errors[10.0])


class TestTileScores:
    def test_overhead_is_inverse_precision(self):
        scores = TileScores(recall=1.0, precision=0.25, mean_predicted=8.0, evaluations=4)
        assert scores.overhead == pytest.approx(4.0)

    def test_zero_precision_overhead_infinite(self):
        scores = TileScores(recall=0.0, precision=0.0, mean_predicted=1.0, evaluations=1)
        assert math.isinf(scores.overhead)


class TestTilePredictionScores:
    def test_oracle_has_full_recall(self):
        trace = HeadMovementModel().generate(10.0, rate=10.0, seed=4)
        grid = TileGrid(4, 4)
        scores = tile_prediction_scores(
            OraclePredictor(trace), trace, grid, Viewport(), horizon=1.0, margin=0
        )
        assert scores.recall == pytest.approx(1.0)

    def test_margin_trades_precision_for_recall(self):
        trace = HeadMovementModel().generate(15.0, rate=10.0, seed=6)
        grid = TileGrid(6, 6)
        viewport = Viewport(fov_theta=1.0, fov_phi=1.0)
        tight = tile_prediction_scores(
            StaticPredictor(), trace, grid, viewport, horizon=1.0, margin=0
        )
        loose = tile_prediction_scores(
            StaticPredictor(), trace, grid, viewport, horizon=1.0, margin=1
        )
        assert loose.recall >= tight.recall
        assert loose.mean_predicted > tight.mean_predicted

    def test_too_short_trace_raises(self):
        trace = circular_pan_trace(0.5, rate=10.0)
        with pytest.raises(ValueError):
            tile_prediction_scores(
                StaticPredictor(), trace, TileGrid(2, 2), Viewport(), horizon=5.0
            )

    def test_evaluation_count_positive(self):
        trace = circular_pan_trace(10.0, rate=10.0)
        scores = tile_prediction_scores(
            StaticPredictor(), trace, TileGrid(4, 4), Viewport(), horizon=1.0
        )
        assert scores.evaluations > 0
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
