"""E11 — extension ablation: popularity-driven partial storage.

E4 prices the full quality x tile matrix. Viewing behaviour is skewed —
most viewers watch the same equatorial hotspots — so the storage manager
can skip high-quality rungs for tiles nobody looks at, degrading the rare
request to the stored floor. This ablation sweeps the hotness threshold
and reports storage saved against the QoE paid by held-out viewers.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    Viewport,
    VisualCloud,
)
from repro.bench.harness import emit_table
from repro.core.popularity import StoragePlanner, tile_popularity
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

from bench_config import RESULTS_DIR

WIDTH, HEIGHT = 256, 128
FPS = 10.0
DURATION = 8.0
GRID = TileGrid(4, 8)
QUALITIES = (Quality.HIGH, Quality.LOWEST)
THRESHOLDS = [
    ("full matrix", None),
    ("hot >= 5%", 0.05),
    ("hot >= 20%", 0.20),
    ("hot >= 60%", 0.60),
]


def build_store(db, name, threshold, popularity):
    plan = (
        None
        if threshold is None
        else StoragePlanner(QUALITIES, hot_threshold=threshold).plan(popularity, GRID)
    )
    config = IngestConfig(grid=GRID, qualities=QUALITIES, gop_frames=10, fps=FPS)
    frames = synthetic_video(
        "venice", width=WIDTH, height=HEIGHT, fps=FPS, duration=DURATION, seed=21
    )
    db.ingest(name, frames, config, quality_plan=plan)
    return db.storage.total_bytes(name)


@pytest.mark.benchmark(group="e11")
def test_e11_popularity_storage(benchmark, tmp_path):
    db = VisualCloud(tmp_path)
    population = ViewerPopulation(seed=42)
    train_users, test_users = population.split(16, train_fraction=0.75)
    training = [population.trace(user, DURATION, rate=10.0) for user in train_users]
    held_out = [population.trace(user, DURATION, rate=10.0) for user in test_users]
    popularity = tile_popularity(training, GRID, Viewport())

    rows = []
    results = {}
    full_bytes = None
    for label, threshold in THRESHOLDS:
        name = f"v{(threshold or 0) * 100:03.0f}"
        stored = build_store(db, name, threshold, popularity)
        if full_bytes is None:
            full_bytes = stored
        manifest = db.storage.build_manifest(name)
        rate = sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        ) / manifest.duration
        at_best = 0.0
        psnr_total = 0.0
        for trace in held_out:
            report = db.serve(
                name,
                (
                    trace,
                    SessionConfig(
                        policy=PredictiveTilingPolicy(),
                        bandwidth=ConstantBandwidth(rate),
                        predictor="static",
                        margin=0,
                        evaluate_quality=True,
                    ),
                ),
            )
            at_best += report.mean_visible_at_best / len(held_out)
            psnr_total += report.mean_viewport_psnr / len(held_out)
        results[label] = (stored, at_best)
        rows.append(
            {
                "plan": label,
                "stored_bytes": stored,
                "storage_saved_%": round(100 * (1 - stored / full_bytes), 1),
                "visible_at_best_%": round(100 * at_best, 1),
                "viewport_psnr_db": round(psnr_total, 1),
            }
        )
    emit_table(
        "E11: popularity-planned storage vs QoE", rows, RESULTS_DIR / "e11_popularity.txt"
    )

    # Shape checks: storage drops monotonically with the threshold, and a
    # behaviour-matched threshold saves real storage at modest QoE cost.
    stored_sizes = [results[label][0] for label, _ in THRESHOLDS]
    assert stored_sizes == sorted(stored_sizes, reverse=True)
    full_quality = results["full matrix"][1]
    modest = results["hot >= 5%"][1]
    assert results["hot >= 5%"][0] < full_bytes
    assert modest > full_quality - 0.10  # viewers barely notice
    # The aggressive plan must actually hurt (the metric is honest).
    assert results["hot >= 60%"][1] < full_quality

    benchmark.pedantic(
        tile_popularity, args=(training[:2], GRID, Viewport()), rounds=1, iterations=1
    )
