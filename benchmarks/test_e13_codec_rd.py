"""E13 — substrate validation: the codec's rate-distortion behaviour.

Every delivery result in this suite rests on the from-scratch codec
behaving like a codec: monotone rate-distortion per content profile,
meaningful gaps between ladder rungs, cheap P-frames on static content
and expensive ones under global motion. This experiment characterises
exactly that, per reference-content profile — the table a reviewer would
ask for before trusting E1.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import emit_table
from repro.video.frame import psnr
from repro.video.gop import GopCodec
from repro.video.quality import Quality
from repro.workloads.videos import synthetic_video

from bench_config import RESULTS_DIR

WIDTH, HEIGHT = 256, 128
FPS = 10.0
SECONDS = 2.0
PROFILES = ("timelapse", "venice", "coaster")


def measure(profile: str, quality: Quality) -> tuple[float, float, float]:
    """Returns (kB per second of video, mean PSNR dB, P/I byte ratio)."""
    frames = list(
        synthetic_video(profile, width=WIDTH, height=HEIGHT, fps=FPS, duration=SECONDS, seed=5)
    )
    codec = GopCodec(quality)
    gop_size = len(codec.encode_gop(frames))
    intra_size = len(codec.encode_gop(frames[:1]))
    decoded = codec.decode_gop(codec.encode_gop(frames))
    scores = [psnr(a, b) for a, b in zip(frames, decoded)]
    finite = [score for score in scores if score != float("inf")]
    mean_psnr = sum(finite) / len(finite) if finite else 99.0
    predicted_per_frame = (gop_size - intra_size) / max(1, len(frames) - 1)
    return gop_size / SECONDS / 1024, mean_psnr, predicted_per_frame / intra_size


@pytest.mark.benchmark(group="e13")
def test_e13_rate_distortion(benchmark):
    rows = []
    curves: dict[str, list[tuple[float, float]]] = {}
    motion_cost: dict[str, float] = {}
    for profile in PROFILES:
        curves[profile] = []
        for quality in Quality:
            rate, quality_db, p_over_i = measure(profile, quality)
            curves[profile].append((rate, quality_db))
            if quality is Quality.HIGH:
                motion_cost[profile] = p_over_i
            rows.append(
                {
                    "profile": profile,
                    "rung": quality.label,
                    "kB_per_s": round(rate, 1),
                    "psnr_db": round(quality_db, 1),
                    "P_frame/I_frame": round(p_over_i, 3),
                }
            )
    emit_table("E13: codec rate-distortion by profile", rows, RESULTS_DIR / "e13_rd.txt")

    for profile, curve in curves.items():
        rates = [rate for rate, _ in curve]
        # Rate strictly decreases down the ladder on every profile.
        assert rates == sorted(rates, reverse=True), profile
        # The full ladder spans at least 4x in rate.
        assert rates[0] / rates[-1] > 4.0, profile
        # Distortion ordering holds for the quantiser-only rungs.
        quantiser_psnrs = [
            quality_db
            for (_, quality_db), quality in zip(curve, Quality)
            if quality.downscale == 1
        ]
        assert quantiser_psnrs == sorted(quantiser_psnrs, reverse=True), profile

    # Temporal-coding sanity: global panning (coaster) makes predicted
    # frames far more expensive than a near-static timelapse.
    assert motion_cost["coaster"] > 2.0 * motion_cost["timelapse"]

    benchmark.pedantic(measure, args=("venice", Quality.HIGH), rounds=1, iterations=1)
