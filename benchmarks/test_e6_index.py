"""E6 — index benefit: GOP and tile indexes make small selections cheap.

Mirrors the index study: a temporal point-select at the end of the video
via the GOP index versus scanning (parsing) or sequentially decoding the
stream, and an angular one-tile select via the tile index versus decoding
the whole sphere. Indexes matter for small selections and wash out for
whole-video reads.
"""

from __future__ import annotations

import time

import pytest

from repro import Quality
from repro.bench.harness import emit_table, ratio
from repro.video.gop import GopStream
from repro.video.tiles import TiledGop

from bench_config import RESULTS_DIR, VIDEOS


def timed(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def stream(bench_db) -> GopStream:
    """One tile's 10-second track as an indexed GOP stream."""
    meta = bench_db.meta(VIDEOS[0])
    stream = GopStream()
    for gop in range(meta.gop_count):
        data = bench_db.storage.read_segment(VIDEOS[0], gop, (1, 1), Quality.HIGH)
        stream.append(data, float(gop), 1.0)
    return stream


@pytest.fixture(scope="module")
def tiled_window(bench_db) -> TiledGop:
    meta = bench_db.meta(VIDEOS[0])
    quality_map = {tile: Quality.HIGH for tile in meta.grid.tiles()}
    return bench_db.storage.read_window(VIDEOS[0], 0, quality_map)


@pytest.mark.benchmark(group="e6")
def test_e6_index_performance(benchmark, stream, tiled_window):
    rows = []
    duration = stream.duration

    for label, (t0, t1) in [
        ("small select [9,10)", (duration - 1.0, duration)),
        ("full select [0,10)", (0.0, duration)),
    ]:
        indexed_t, indexed = timed(lambda: stream.select_indexed(t0, t1))
        scan_t, scanned = timed(lambda: stream.select_scan(t0, t1))
        decode_t, _ = timed(lambda: stream.select_decode(t0, t1), repeat=1)
        assert indexed == scanned
        rows.append(
            {
                "selection": label,
                "gop_index_s": round(indexed_t, 6),
                "parse_scan_s": round(scan_t, 6),
                "decode_scan_s": round(decode_t, 4),
                "index_vs_decode": ratio(decode_t, max(indexed_t, 1e-9)),
            }
        )

    # Tile index: decode one tile via the byte-range index versus decoding
    # the full sphere to obtain the same tile.
    tile = (1, 1)
    one_tile_t, tile_frames = timed(lambda: tiled_window.decode_tile(*tile))
    full_t, full_frames = timed(lambda: tiled_window.decode(), repeat=1)
    x0, y0, x1, y1 = tiled_window.pixel_rect(*tile)
    assert tile_frames[0].equals(full_frames[0].crop(x0, y0, x1, y1))
    rows.append(
        {
            "selection": "one tile of 32 (angular)",
            "gop_index_s": round(one_tile_t, 6),
            "parse_scan_s": "-",
            "decode_scan_s": round(full_t, 4),
            "index_vs_decode": ratio(full_t, max(one_tile_t, 1e-9)),
        }
    )

    emit_table("E6: index performance", rows, RESULTS_DIR / "e6_index.txt")

    # Shape checks: the index wins big on small selections, and the win
    # shrinks (or vanishes) when the selection covers everything.
    small, full, tile_row = rows
    assert small["gop_index_s"] * 100 < small["decode_scan_s"]
    small_factor = small["decode_scan_s"] / max(small["gop_index_s"], 1e-9)
    full_factor = full["decode_scan_s"] / max(full["gop_index_s"], 1e-9)
    assert small_factor > full_factor  # relative benefit shrinks on full reads
    assert tile_row["gop_index_s"] * 5 < tile_row["decode_scan_s"]

    benchmark.pedantic(
        lambda: stream.select_indexed(duration - 1.0, duration), rounds=3, iterations=1
    )
