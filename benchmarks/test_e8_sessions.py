"""E8 — scale: concurrent sessions against one storage manager.

The demo served multiple headsets from one server. This experiment runs
growing session populations (distinct viewers, same stored video) and
reports wall time, sessions/second, and aggregate delivered bytes. The
expected shape: per-session cost stays flat (no cross-session state in
the delivery engine) so total time grows linearly, and per-session bytes
are stable across the population.
"""

from __future__ import annotations

import time

import pytest

from repro import ConstantBandwidth, PredictiveTilingPolicy, SessionConfig
from repro.bench.harness import emit_table
from repro.workloads.users import ViewerPopulation

from bench_config import DURATION, RESULTS_DIR, VIDEOS

POPULATIONS = [1, 4, 16]
VIDEO = "venice"


def serve_population(db, traces, rate):
    reports = []
    for trace in traces:
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(rate),
            predictor="static",
            margin=0,
        )
        reports.append(db.serve(VIDEO, (trace, config)))
    return reports


@pytest.mark.benchmark(group="e8")
def test_e8_concurrent_sessions(benchmark, bench_db, naive_rate):
    population = ViewerPopulation(seed=17)
    rate = naive_rate[VIDEO]
    rows = []
    per_session_times = {}
    for count in POPULATIONS:
        traces = population.traces(count, DURATION, rate=10.0)
        start = time.perf_counter()
        reports = serve_population(bench_db, traces, rate)
        elapsed = time.perf_counter() - start
        per_session_times[count] = elapsed / count
        total_bytes = sum(report.total_bytes for report in reports)
        rows.append(
            {
                "sessions": count,
                "wall_s": round(elapsed, 3),
                "sessions_per_s": round(count / elapsed, 1),
                "per_session_ms": round(1000 * elapsed / count, 1),
                "bytes_per_session": total_bytes // count,
                "stall_s_total": round(sum(r.stall_time for r in reports), 2),
            }
        )
    emit_table("E8: session scaling", rows, RESULTS_DIR / "e8_sessions.txt")

    # Shape check: per-session cost must not grow with the population
    # (within noise) — the delivery engine is stateless across sessions.
    assert per_session_times[16] < per_session_times[1] * 1.6

    traces = population.traces(1, DURATION, rate=10.0)
    benchmark.pedantic(
        serve_population, args=(bench_db, traces, rate), rounds=1, iterations=1
    )
