"""E14 — ingest throughput: vectorized entropy path + parallel encode.

The storage manager's premise is pre-encoding every (window × tile ×
quality) segment at ingest; this experiment records how fast that is and
how much the vectorized exp-Golomb coder buys over the scalar reference
(the wire format's executable specification). The standalone harness
``python -m repro.bench.ingest`` produces the same numbers plus
``BENCH_ingest.json`` for the repo-level perf baseline.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import emit_table, ratio
from repro.bench.ingest import bench_entropy, bench_ingest, bench_split
from repro.video.quality import Quality
from repro.workloads.videos import synthetic_video

from bench_config import FPS, GOP_FRAMES, GRID, HEIGHT, RESULTS_DIR, WIDTH

SECONDS = 3.0
REPEATS = 2


@pytest.mark.benchmark(group="e14")
def test_e14_ingest_throughput(benchmark):
    frames = list(
        synthetic_video(
            "venice", width=WIDTH, height=HEIGHT, fps=FPS, duration=SECONDS, seed=5
        )
    )
    entropy = bench_entropy(frames, Quality.HIGH, REPEATS)
    split = bench_split(frames, GOP_FRAMES, Quality.HIGH, REPEATS)
    config_args = {
        "grid": GRID,
        "qualities": (Quality.HIGH, Quality.LOWEST),
        "gop_frames": GOP_FRAMES,
        "fps": FPS,
    }
    ingest = bench_ingest(frames, config_args, [1, 2])

    rows = [
        {
            "metric": "entropy encode",
            "reference_ms": round(entropy["encode_seconds_reference"] * 1e3, 1),
            "vectorized_ms": round(entropy["encode_seconds_vectorized"] * 1e3, 1),
            "speedup": ratio(
                entropy["encode_seconds_reference"],
                entropy["encode_seconds_vectorized"],
            ),
        },
        {
            "metric": "entropy decode",
            "reference_ms": round(entropy["decode_seconds_reference"] * 1e3, 1),
            "vectorized_ms": round(entropy["decode_seconds_vectorized"] * 1e3, 1),
            "speedup": ratio(
                entropy["decode_seconds_reference"],
                entropy["decode_seconds_vectorized"],
            ),
        },
    ]
    for workers, run in sorted(ingest["workers"].items(), key=lambda kv: int(kv[0])):
        rows.append(
            {
                "metric": f"ingest workers={workers}",
                "frames_per_s": round(run["frames_per_sec"], 1),
                "encoded_MB_per_s": round(run["encoded_mb_per_sec"], 3),
                "speedup": ratio(
                    ingest["workers"]["1"]["seconds"], run["seconds"]
                ),
            }
        )
    rows.append(
        {
            "metric": "GOP codec split",
            "encode_pct": round(split["encode_fraction"] * 100),
        }
    )
    emit_table("E14: ingest throughput", rows, RESULTS_DIR / "e14_ingest.txt")

    # The wire-format identity itself is enforced by tier-1 tests; here we
    # hold the perf claim: the vectorized coder must stay well ahead of
    # the scalar reference on both directions.
    assert entropy["byte_identical"]
    assert entropy["encode_speedup"] > 2.0
    assert entropy["decode_speedup"] > 2.0
    # Parallel ingest must produce the same amount of stored bytes.
    sizes = {run["stored_bytes"] for run in ingest["workers"].values()}
    assert len(sizes) == 1
