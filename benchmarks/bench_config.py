"""Shared configuration constants for the benchmark suite."""

from __future__ import annotations

from pathlib import Path

from repro import Quality, TileGrid

RESULTS_DIR = Path(__file__).parent / "results"

# The canonical experiment configuration: a 256x128 equirectangular raster
# (scaled-down stand-in for the 4K originals), 1-second windows, a 4x8
# angular grid (32 tiles of 32x32), and a three-rung ladder.
WIDTH, HEIGHT = 256, 128
FPS = 10.0
DURATION = 10.0
GRID = TileGrid(4, 8)
QUALITIES = (Quality.HIGH, Quality.MEDIUM, Quality.LOWEST)
GOP_FRAMES = 10
VIDEOS = ("timelapse", "venice", "coaster")

TRAIN_USERS = 12
TEST_USER = 20  # evaluation viewer, disjoint from the training population
