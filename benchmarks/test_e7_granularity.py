"""E7 — ablation: segment duration x tiling granularity.

The design-choice sweep DESIGN.md calls out: shorter delivery windows
mean shorter prediction horizons (better recall, more savings headroom)
but more per-segment overhead; finer grids track the viewport more
tightly but add per-tile cost. Reports bytes saved vs. naive and the
fraction of viewed tiles at top quality for each configuration.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.bench.harness import emit_table
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

from bench_config import RESULTS_DIR

WIDTH, HEIGHT = 256, 128
FPS = 10.0
DURATION = 8.0
GOP_CHOICES = [5, 10, 20]  # 0.5 s, 1 s, 2 s windows
GRID_CHOICES = [TileGrid(2, 4), TileGrid(4, 8)]
QUALITIES = (Quality.HIGH, Quality.LOWEST)


def run_config(db, name, trace, gop_frames, grid):
    config = IngestConfig(grid=grid, qualities=QUALITIES, gop_frames=gop_frames, fps=FPS)
    frames = synthetic_video(
        "venice", width=WIDTH, height=HEIGHT, fps=FPS, duration=DURATION, seed=11
    )
    db.ingest(name, frames, config)
    manifest = db.storage.build_manifest(name)
    rate = (
        sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        )
        / manifest.duration
    )
    naive = db.serve(
        name,
        (trace, SessionConfig(policy=NaiveFullQuality(), bandwidth=ConstantBandwidth(rate))),
    )
    predictive = db.serve(
        name,
        (
            trace,
            SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=ConstantBandwidth(rate),
                predictor="static",
                margin=0,
            ),
        ),
    )
    return naive, predictive


@pytest.mark.benchmark(group="e7")
def test_e7_granularity_sweep(benchmark, tmp_path):
    db = VisualCloud(tmp_path)
    trace = ViewerPopulation(seed=42).trace(9, DURATION, rate=10.0)
    rows = []
    results = {}
    for grid in GRID_CHOICES:
        for gop_frames in GOP_CHOICES:
            name = f"g{grid.rows}x{grid.cols}_w{gop_frames}"
            naive, predictive = run_config(db, name, trace, gop_frames, grid)
            savings = predictive.bytes_saved_vs(naive)
            results[(f"{grid.rows}x{grid.cols}", gop_frames)] = savings
            rows.append(
                {
                    "grid": f"{grid.rows}x{grid.cols}",
                    "window_s": gop_frames / FPS,
                    "naive_bytes": naive.total_bytes,
                    "predictive_bytes": predictive.total_bytes,
                    "savings_%": round(100 * savings, 1),
                    "visible_at_best_%": round(
                        100 * predictive.mean_visible_at_best, 1
                    ),
                }
            )
    emit_table(
        "E7: savings by window duration x grid", rows, RESULTS_DIR / "e7_granularity.txt"
    )

    # Shape checks: the finer grid saves more at every window duration
    # (smaller high-quality footprint), and savings are positive everywhere.
    for gop_frames in GOP_CHOICES:
        assert results[("4x8", gop_frames)] > results[("2x4", gop_frames)]
    assert min(results.values()) > 0.15

    benchmark.pedantic(
        run_config,
        args=(VisualCloud(tmp_path / "timed"), "timed", trace, 10, TileGrid(2, 4)),
        rounds=1,
        iterations=1,
    )
