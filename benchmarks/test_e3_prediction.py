"""E3 — head-orientation prediction accuracy by horizon.

The predictor study behind the demo's server design: mean great-circle
error (degrees) and predicted-tile recall/overhead for each predictor at
delivery-relevant horizons. The measured shape: everything is accurate
at sub-second horizons; pure velocity extrapolation chases fixation
jitter and loses to the static baseline everywhere; the motion-gated
hybrid recovers the short-horizon win; the trained Markov model buys the
best tile precision; the oracle bounds what is achievable.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import emit_table
from repro.geometry.viewport import Viewport
from repro.predict.evaluate import orientation_error_by_horizon, tile_prediction_scores
from repro.predict.predictors import (
    DeadReckoningPredictor,
    HybridPredictor,
    LinearRegressionPredictor,
    MarkovPredictor,
    OraclePredictor,
    StaticPredictor,
)
from repro.workloads.users import ViewerPopulation

from bench_config import GRID, RESULTS_DIR

HORIZONS = [0.5, 1.0, 2.0, 4.0]
DURATION = 60.0
TRAIN_USERS = list(range(6))
TEST_USERS = [20, 21, 22]


def build_predictors(training_traces):
    markov = MarkovPredictor(GRID, step_duration=0.5)
    markov.train(training_traces)
    return [
        ("static", StaticPredictor()),
        ("deadreckoning", DeadReckoningPredictor()),
        ("linear", LinearRegressionPredictor()),
        ("hybrid", HybridPredictor()),
        ("markov", markov),
    ]


@pytest.mark.benchmark(group="e3")
def test_e3_prediction_accuracy(benchmark):
    population = ViewerPopulation(seed=7)
    training = [population.trace(user, DURATION, rate=10.0) for user in TRAIN_USERS]
    test_traces = [population.trace(user, DURATION, rate=10.0) for user in TEST_USERS]
    predictors = build_predictors(training)

    error_rows = []
    all_errors = {}
    for label, predictor in predictors + [("oracle", None)]:
        per_horizon = {horizon: [] for horizon in HORIZONS}
        for trace in test_traces:
            instance = OraclePredictor(trace) if label == "oracle" else predictor
            errors = orientation_error_by_horizon(instance, trace, HORIZONS)
            for horizon, value in errors.items():
                per_horizon[horizon].append(value)
        means = {h: sum(v) / len(v) for h, v in per_horizon.items()}
        all_errors[label] = means
        error_rows.append(
            {"predictor": label}
            | {f"err@{h}s_deg": round(math.degrees(means[h]), 1) for h in HORIZONS}
        )
    emit_table(
        "E3a: mean orientation error by horizon", error_rows, RESULTS_DIR / "e3a_error.txt"
    )

    # The Markov model hedges through its probability coverage, so it runs
    # margin-free; the parametric predictors hedge with a one-ring margin.
    tile_rows = []
    recalls = {}
    viewport = Viewport()
    margins = {"markov": 0}
    for label, predictor in predictors + [("oracle", None)]:
        margin = margins.get(label, 1)
        scores = []
        for trace in test_traces:
            instance = OraclePredictor(trace) if label == "oracle" else predictor
            scores.append(
                tile_prediction_scores(
                    instance, trace, GRID, viewport, horizon=1.0, margin=margin
                )
            )
        recall = sum(s.recall for s in scores) / len(scores)
        precision = sum(s.precision for s in scores) / len(scores)
        mean_tiles = sum(s.mean_predicted for s in scores) / len(scores)
        recalls[label] = recall
        tile_rows.append(
            {
                "predictor": label,
                "margin": margin,
                "recall_%": round(100 * recall, 1),
                "precision_%": round(100 * precision, 1),
                "tiles_sent": round(mean_tiles, 1),
            }
        )
    emit_table(
        "E3b: predicted-tile recall at 1s horizon",
        tile_rows,
        RESULTS_DIR / "e3b_tiles.txt",
    )

    # Shape checks.
    for label, means in all_errors.items():
        values = [means[h] for h in HORIZONS]
        assert values == sorted(
            values, key=lambda v: round(v, 9)
        ) or label == "oracle", f"{label}: error must grow with horizon"
    assert all_errors["oracle"][4.0] < 1e-6
    # Short horizons are much easier than long ones for every real predictor.
    for label in ("static", "deadreckoning", "linear", "hybrid", "markov"):
        assert all_errors[label][0.5] < all_errors[label][4.0] / 1.5
    # Tile recall with hedging is high for all predictors at 1 s.
    assert min(recalls.values()) > 0.8
    assert recalls["oracle"] == pytest.approx(1.0)
    # The motion gate must pay off where motion models can win: short
    # horizons. Beyond them it degrades gracefully toward static.
    assert all_errors["hybrid"][0.5] <= all_errors["static"][0.5] * 1.02
    assert all_errors["hybrid"][4.0] <= all_errors["deadreckoning"][4.0]

    trace = test_traces[0]
    benchmark.pedantic(
        orientation_error_by_horizon,
        args=(StaticPredictor(), trace, HORIZONS),
        rounds=1,
        iterations=1,
    )
