"""E4 — storage cost of the multi-quality, tiled store.

VisualCloud trades storage for delivery bandwidth: every segment exists
at every ladder rung, and finer tilings add per-tile container and
intra-coding overhead. This experiment sweeps ladder depth x tiling
granularity and reports total stored bytes relative to the single-quality
untiled baseline — the table an operator uses to size a deployment.
"""

from __future__ import annotations

import pytest

from repro import IngestConfig, Quality, TileGrid, VisualCloud
from repro.bench.harness import emit_table
from repro.workloads.videos import synthetic_video

from bench_config import RESULTS_DIR

WIDTH, HEIGHT = 128, 64
FPS = 8.0
DURATION = 4.0
GRIDS = [TileGrid(1, 1), TileGrid(2, 2), TileGrid(2, 4), TileGrid(4, 8)]
LADDERS = [1, 2, 3, 4]


def ingest_variant(db: VisualCloud, name: str, grid: TileGrid, ladder: int) -> int:
    config = IngestConfig(
        grid=grid, qualities=Quality.ladder(ladder), gop_frames=8, fps=FPS
    )
    frames = synthetic_video(
        "venice", width=WIDTH, height=HEIGHT, fps=FPS, duration=DURATION, seed=3
    )
    db.ingest(name, frames, config)
    return db.storage.total_bytes(name)


@pytest.mark.benchmark(group="e4")
def test_e4_storage_cost(benchmark, tmp_path):
    db = VisualCloud(tmp_path)
    sizes: dict[tuple[str, int], int] = {}
    for grid in GRIDS:
        for ladder in LADDERS:
            name = f"v_{grid.rows}x{grid.cols}_q{ladder}"
            sizes[(f"{grid.rows}x{grid.cols}", ladder)] = ingest_variant(
                db, name, grid, ladder
            )
    baseline = sizes[("1x1", 1)]
    rows = [
        {
            "grid": grid_label,
            "ladder": ladder,
            "bytes": size,
            "relative": round(size / baseline, 2),
        }
        for (grid_label, ladder), size in sizes.items()
    ]
    emit_table(
        "E4: stored bytes by tiling x ladder (relative to untiled single quality)",
        rows,
        RESULTS_DIR / "e4_storage.txt",
    )

    # Shape checks: cost grows with ladder depth and tiling granularity,
    # but each extra (lower-quality) rung costs less than the one above.
    for grid_label in ("1x1", "2x2", "2x4", "4x8"):
        ladder_sizes = [sizes[(grid_label, ladder)] for ladder in LADDERS]
        assert ladder_sizes == sorted(ladder_sizes)
        increments = [b - a for a, b in zip(ladder_sizes, ladder_sizes[1:])]
        assert increments == sorted(increments, reverse=True)
    for ladder in LADDERS:
        assert sizes[("4x8", ladder)] > sizes[("1x1", ladder)]
    # The full matrix costs well under (rungs x baseline): lower rungs are
    # cheap, which is what makes the design affordable.
    assert sizes[("4x8", 4)] < 2.5 * sizes[("4x8", 1)]

    benchmark.pedantic(
        ingest_variant,
        args=(VisualCloud(tmp_path / "timed"), "timed", TileGrid(2, 2), 2),
        rounds=1,
        iterations=1,
    )
