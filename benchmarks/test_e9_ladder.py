"""E9 — ablation: ladder span vs. achievable savings.

EXPERIMENTS.md's deviation #2: the quantiser-only ladder spans ~4x, capping
predictive savings near 53 %. Real ladders add resolution-scaled rungs to
widen the gap; this ablation compares the quantiser-only floor (LOWEST)
with the half-resolution THUMBNAIL rung as the background quality and
shows the headline number crossing the paper's 60 %.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.bench.harness import emit_table
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

from bench_config import RESULTS_DIR

WIDTH, HEIGHT = 256, 128
FPS = 10.0
DURATION = 8.0
GRID = TileGrid(4, 8)
LADDERS = [
    ("quantiser-only floor", (Quality.HIGH, Quality.LOWEST)),
    ("half-resolution floor", (Quality.HIGH, Quality.THUMBNAIL)),
]


def run_ladder(db, name, qualities, trace):
    config = IngestConfig(grid=GRID, qualities=qualities, gop_frames=10, fps=FPS)
    frames = synthetic_video(
        "venice", width=WIDTH, height=HEIGHT, fps=FPS, duration=DURATION, seed=9
    )
    db.ingest(name, frames, config)
    manifest = db.storage.build_manifest(name)
    rate = (
        sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        )
        / manifest.duration
    )
    naive = db.serve(
        name,
        (trace, SessionConfig(policy=NaiveFullQuality(), bandwidth=ConstantBandwidth(rate))),
    )
    predictive = db.serve(
        name,
        (
            trace,
            SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=ConstantBandwidth(rate),
                predictor="static",
                margin=0,
                evaluate_quality=True,
            ),
        ),
    )
    floor_sphere = manifest.full_sphere_size(0, qualities[-1])
    top_sphere = manifest.full_sphere_size(0, Quality.HIGH)
    return naive, predictive, top_sphere / floor_sphere


@pytest.mark.benchmark(group="e9")
def test_e9_ladder_span(benchmark, tmp_path):
    db = VisualCloud(tmp_path)
    trace = ViewerPopulation(seed=42).trace(20, DURATION, rate=10.0)
    rows = []
    savings = {}
    for label, qualities in LADDERS:
        naive, predictive, span = run_ladder(db, label.split()[0], qualities, trace)
        saved = predictive.bytes_saved_vs(naive)
        savings[label] = saved
        rows.append(
            {
                "ladder": label,
                "span_x": round(span, 1),
                "naive_bytes": naive.total_bytes,
                "predictive_bytes": predictive.total_bytes,
                "savings_%": round(100 * saved, 1),
                "viewport_psnr_db": round(predictive.mean_viewport_psnr, 1),
            }
        )
    emit_table("E9: ladder span vs savings", rows, RESULTS_DIR / "e9_ladder.txt")

    # Shape checks: the wider ladder pushes savings to the paper's
    # "up to 60 %" headline while the viewport (served at HIGH either
    # way) stays intact.
    assert savings["half-resolution floor"] > savings["quantiser-only floor"]
    assert savings["half-resolution floor"] > 0.55
    assert rows[1]["viewport_psnr_db"] > 45

    benchmark.pedantic(
        run_ladder,
        args=(VisualCloud(tmp_path / "timed"), "timed", LADDERS[1][1], trace),
        rounds=1,
        iterations=1,
    )
