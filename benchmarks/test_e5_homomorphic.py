"""E5 — homomorphic operators vs. the decode/re-encode path.

The optimisation that dominates the successor system's microbenchmarks
(up to 500x there): selections and unions that align with GOP or tile
boundaries move encoded bytes instead of running the codec. This
experiment times each homomorphic operator against the decode-path
equivalent on the same stored video and reports the throughput factor.
"""

from __future__ import annotations

import time

import pytest

from repro import Quality, Scan
from repro.bench.harness import emit_table, ratio
from repro.core.query import QueryExecutor
from repro.video.gop import GopStream, decode_any_gop
from repro.video.tiles import TiledVideoCodec

from bench_config import FPS, GOP_FRAMES, GRID, RESULTS_DIR, VIDEOS


def timed(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def windows(bench_db):
    """All encoded windows of one video, as TiledGops (no decode)."""
    meta = bench_db.meta(VIDEOS[0])
    quality_map = {tile: Quality.HIGH for tile in meta.grid.tiles()}
    return [
        bench_db.storage.read_window(VIDEOS[0], gop, quality_map)
        for gop in range(meta.gop_count)
    ]


@pytest.fixture(scope="module")
def gop_stream(windows):
    stream = GopStream()
    codec = None
    for index, window in enumerate(windows):
        # One representative tile's GOP bytes per window.
        stream.append(window.payloads[(1, 1)], float(index), 1.0)
    return stream


@pytest.mark.benchmark(group="e5")
def test_e5_homomorphic_operators(benchmark, bench_db, windows, gop_stream):
    frames_total = sum(window.frame_count for window in windows)
    half_tiles = {tile for tile in GRID.tiles() if tile[1] < GRID.cols // 2}
    other_tiles = set(GRID.tiles()) - half_tiles
    rows = []

    def record(operation, homomorphic_seconds, decode_seconds, frames):
        rows.append(
            {
                "operation": operation,
                "homomorphic_s": round(homomorphic_seconds, 5),
                "decode_path_s": round(decode_seconds, 3),
                "speedup": ratio(decode_seconds, max(homomorphic_seconds, 1e-9)),
                "fps_homomorphic": int(frames / max(homomorphic_seconds, 1e-9)),
                "fps_decode": int(frames / max(decode_seconds, 1e-9)),
            }
        )

    # TILESELECT: keep half the sphere.
    homo_t, homo_result = timed(lambda: [w.select(half_tiles) for w in windows])
    codec = TiledVideoCodec(GRID, windows[0].width, windows[0].height)

    def decode_select():
        out = []
        for window in windows:
            frames = window.decode()
            cropped = [
                frame.crop(0, 0, window.width // 2, window.height) for frame in frames
            ]
            half_codec = TiledVideoCodec(
                GRID.__class__(GRID.rows, GRID.cols // 2),
                window.width // 2,
                window.height,
            )
            out.append(half_codec.encode_gop(cropped, Quality.HIGH))
        return out

    dec_t, _ = timed(decode_select, repeat=1)
    record("TILESELECT (half sphere)", homo_t, dec_t, frames_total)
    assert all(set(w.payloads) == half_tiles for w in homo_result)

    # TILEUNION: stitch the two halves back together.
    left = [w.select(half_tiles) for w in windows]
    right = [w.select(other_tiles) for w in windows]
    homo_t, union_result = timed(
        lambda: [a.union(b) for a, b in zip(left, right)]
    )

    def decode_union():
        out = []
        for a, b in zip(left, right):
            frames_a = a.decode()
            frames_b = b.decode()
            merged = []
            for fa, fb in zip(frames_a, frames_b):
                x0 = a.width // 2
                merged.append(fa.paste(fb.crop(x0, 0, a.width, a.height), x0, 0))
            out.append(codec.encode_gop(merged, Quality.HIGH))
        return out

    dec_t, _ = timed(decode_union, repeat=1)
    record("TILEUNION (two halves)", homo_t, dec_t, frames_total)
    assert union_result[0].decode()[0].equals(windows[0].decode()[0])

    # GOPSELECT: last second of a ten-second stream.
    t0, t1 = len(windows) - 1.0, float(len(windows))
    homo_t, selected = timed(lambda: gop_stream.select_indexed(t0, t1))
    dec_t, _ = timed(lambda: gop_stream.select_decode(t0, t1), repeat=1)
    tile_frames = GOP_FRAMES * len(windows)
    record("GOPSELECT (last 1s of 10s)", homo_t, dec_t, tile_frames)
    assert len(selected) == 1

    # GOPUNION: concatenate two streams.
    homo_t, unioned = timed(lambda: GopStream.union([gop_stream, gop_stream]))

    def decode_gop_union():
        frames = [decode_any_gop(g) for g in gop_stream.select_indexed(0, t1)] * 2
        from repro.video.gop import GopCodec

        codec_local = GopCodec(Quality.HIGH)
        return [codec_local.encode_gop(batch) for batch in frames]

    dec_t, _ = timed(decode_gop_union, repeat=1)
    record("GOPUNION (self-concat)", homo_t, dec_t, 2 * tile_frames)
    assert unioned.gop_count == 2 * gop_stream.gop_count

    # Planner end-to-end: aligned select via executor vs unaligned.
    executor = QueryExecutor(bench_db.storage)
    homo_t, _ = timed(
        lambda: executor.execute(Scan(VIDEOS[0]).select(time=(8.0, 10.0))), repeat=1
    )
    dec_t, _ = timed(
        lambda: executor.execute(Scan(VIDEOS[0]).select(time=(8.05, 9.95))), repeat=1
    )
    record("planner: aligned vs unaligned select", homo_t, dec_t, 2 * GOP_FRAMES)

    emit_table(
        "E5: homomorphic vs decode-path operators", rows, RESULTS_DIR / "e5_homomorphic.txt"
    )

    # Shape check: byte-level operators are orders of magnitude faster.
    for row in rows[:4]:
        assert row["homomorphic_s"] * 50 < row["decode_path_s"], row["operation"]

    benchmark.pedantic(
        lambda: [w.select(half_tiles) for w in windows], rounds=3, iterations=1
    )
