"""Shared benchmark fixtures: one ingested database reused by E1-E8.

The heavy work — procedurally generating the three reference-video
stand-ins and encoding them at the full tiling/quality matrix — happens
once per pytest session. Experiments that need custom segmentations
(E4, E7) ingest their own smaller variants.
"""

from __future__ import annotations

import pytest

from repro import IngestConfig, Quality, VisualCloud
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

from bench_config import (
    DURATION,
    FPS,
    GOP_FRAMES,
    GRID,
    HEIGHT,
    QUALITIES,
    TEST_USER,
    TRAIN_USERS,
    VIDEOS,
    WIDTH,
)


@pytest.fixture(scope="session")
def bench_db(tmp_path_factory) -> VisualCloud:
    """A database holding all three reference videos, predictor trained."""
    db = VisualCloud(tmp_path_factory.mktemp("benchdb"))
    # Delivery unions predictions across a window, so the Markov model's
    # coverage target is tightened to keep its hedging selective.
    db.prediction.markov_coverage = 0.8
    config = IngestConfig(
        grid=GRID, qualities=QUALITIES, gop_frames=GOP_FRAMES, fps=FPS
    )
    for index, name in enumerate(VIDEOS):
        frames = synthetic_video(
            name, width=WIDTH, height=HEIGHT, fps=FPS, duration=DURATION, seed=100 + index
        )
        db.ingest(name, frames, config)
    population = ViewerPopulation(seed=42)
    training = [population.trace(user, DURATION, rate=10.0) for user in range(TRAIN_USERS)]
    for name in VIDEOS:
        db.train_predictor(name, training)
    return db


@pytest.fixture(scope="session")
def viewer_trace():
    """The held-out evaluation viewer's head-movement trace."""
    return ViewerPopulation(seed=42).trace(TEST_USER, DURATION, rate=10.0)


@pytest.fixture(scope="session")
def naive_rate(bench_db) -> dict[str, float]:
    """Per-video bytes/second required by naive full-quality delivery."""
    rates = {}
    for name in VIDEOS:
        manifest = bench_db.storage.build_manifest(name)
        total = sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        )
        rates[name] = total / manifest.duration
    return rates
