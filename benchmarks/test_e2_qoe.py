"""E2 — QoE: the bytes saved must not come out of the viewport.

The demonstration's second claim: predictive tiled delivery preserves
what the viewer actually sees. Uniform adaptation saves a similar byte
count (E1) but pays with degraded viewport pixels; predictive delivery
keeps the viewport at top quality and degrades only the tiles behind the
viewer's head. Metrics: viewport PSNR relative to the naive render,
fraction of viewed tiles delivered at the ladder top, stall time, and
quality-switch frequency.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantBandwidth,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    SessionConfig,
    UniformAdaptive,
)
from repro.bench.harness import emit_table

from bench_config import RESULTS_DIR

VIDEO = "venice"

POLICIES = [
    ("naive", lambda: NaiveFullQuality(), {}),
    ("uniform", lambda: UniformAdaptive(), {}),
    ("predictive (m=1)", lambda: PredictiveTilingPolicy(), {"margin": 1}),
    ("predictive (m=0)", lambda: PredictiveTilingPolicy(), {"margin": 0}),
    ("predictive (markov)", lambda: PredictiveTilingPolicy(), {"margin": 0, "predictor": "markov"}),
]


def run(db, trace, rate, factory, overrides):
    config = SessionConfig(
        policy=factory(),
        bandwidth=ConstantBandwidth(rate),
        predictor=overrides.get("predictor", "static"),
        margin=overrides.get("margin", 1),
        evaluate_quality=True,
    )
    return db.serve(VIDEO, (trace, config))


@pytest.mark.benchmark(group="e2")
def test_e2_viewport_quality(benchmark, bench_db, viewer_trace, naive_rate):
    rate = naive_rate[VIDEO]
    reports = {}
    rows = []
    for label, factory, overrides in POLICIES:
        report = run(bench_db, viewer_trace, rate, factory, overrides)
        reports[label] = report
        rows.append(
            {
                "policy": label,
                "bytes": report.total_bytes,
                "viewport_psnr_db": round(report.mean_viewport_psnr, 1),
                "visible_at_best_%": round(100 * report.mean_visible_at_best, 1),
                "stalls_s": round(report.stall_time, 2),
                "quality_switches": report.quality_switches,
            }
        )
    emit_table("E2: viewport QoE by policy", rows, RESULTS_DIR / "e2_qoe.txt")

    naive = reports["naive"]
    uniform = reports["uniform"]
    margin1 = reports["predictive (m=1)"]

    # Naive defines the quality ceiling (measured against itself).
    assert naive.mean_viewport_psnr == pytest.approx(99.0)
    # Uniform pays for its byte savings with viewport quality ...
    assert uniform.mean_viewport_psnr < naive.mean_viewport_psnr - 5
    # ... while predictive delivery keeps the viewport near the ceiling
    # (better than uniform's whole-sphere degradation) at similar bytes.
    assert margin1.mean_viewport_psnr > uniform.mean_viewport_psnr + 3
    assert margin1.mean_visible_at_best > 0.75
    assert margin1.total_bytes < naive.total_bytes

    benchmark.pedantic(
        run,
        args=(bench_db, viewer_trace, rate, lambda: PredictiveTilingPolicy(), {"margin": 1}),
        rounds=1,
        iterations=1,
    )
