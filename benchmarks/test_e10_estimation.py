"""E10 — ablation: client-side throughput estimation under volatility.

The delivery experiments elsewhere let the policy read the link's true
rate (an oracle). Real clients estimate from completed transfers. This
ablation streams over a volatile (random-walk) link with each estimator
and reports stalls and delivered bytes — how much of the system's
performance depends on knowing the bandwidth.
"""

from __future__ import annotations

import pytest

from repro import PredictiveTilingPolicy, SessionConfig, TraceBandwidth
from repro.bench.harness import emit_table
from repro.stream.estimator import (
    EwmaEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
)
from repro.workloads.users import ViewerPopulation

from bench_config import DURATION, RESULTS_DIR

VIDEO = "venice"

ESTIMATORS = [
    ("oracle (true rate)", lambda: None),
    ("harmonic mean (w=5)", lambda: HarmonicMeanEstimator(window=5)),
    ("EWMA (a=0.3)", lambda: EwmaEstimator(alpha=0.3)),
    ("last sample", lambda: LastSampleEstimator()),
]


@pytest.mark.benchmark(group="e10")
def test_e10_throughput_estimation(benchmark, bench_db, naive_rate):
    population = ViewerPopulation(seed=33)
    traces = population.traces(3, DURATION, rate=10.0)
    mean_rate = naive_rate[VIDEO] * 0.45  # constrained: estimation errors bind
    rows = []
    stalls = {}
    for label, factory in ESTIMATORS:
        total_stall = 0.0
        total_bytes = 0
        at_best = 0.0
        for seed, trace in enumerate(traces):
            link = TraceBandwidth.random_walk(
                DURATION + 5, mean_rate, volatility=0.5, step=1.0, seed=seed
            )
            config = SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=link,
                predictor="static",
                margin=0,
                estimator=factory(),
            )
            report = bench_db.serve(VIDEO, (trace, config))
            total_stall += report.stall_time
            total_bytes += report.total_bytes
            at_best += report.mean_visible_at_best / len(traces)
        stalls[label] = total_stall
        rows.append(
            {
                "estimator": label,
                "stall_s": round(total_stall, 2),
                "bytes": total_bytes,
                "visible_at_best_%": round(100 * at_best, 1),
            }
        )
    emit_table(
        "E10: throughput estimation under a volatile link",
        rows,
        RESULTS_DIR / "e10_estimation.txt",
    )

    # Shape checks: realistic estimators stay within a workable distance
    # of the oracle; every session completed for every estimator.
    for label in stalls:
        assert stalls[label] < DURATION * len(traces) * 0.5, label

    trace = traces[0]
    link = TraceBandwidth.random_walk(DURATION + 5, mean_rate, seed=0)
    benchmark.pedantic(
        bench_db.serve,
        args=(
            VIDEO,
            trace,
            SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=link,
                predictor="static",
                margin=0,
                estimator=HarmonicMeanEstimator(),
            ),
        ),
        rounds=1,
        iterations=1,
    )
