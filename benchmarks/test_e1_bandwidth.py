"""E1 — the headline figure: delivery bandwidth per policy.

Reproduces the demonstration's central claim: predictive tiled delivery
cuts bytes sent by up to ~60% versus naive full-quality sphere delivery,
with un-tiled adaptive streaming unable to close the gap without giving
up viewport quality. One row per (video, policy); savings are relative
to the naive baseline on the same video and trace.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantBandwidth,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    SessionConfig,
    UniformAdaptive,
)
from repro.bench.harness import emit_table

from bench_config import RESULTS_DIR, VIDEOS


POLICIES = [
    ("naive", lambda: NaiveFullQuality(), {}),
    ("uniform", lambda: UniformAdaptive(), {}),
    ("predictive (m=1)", lambda: PredictiveTilingPolicy(), {"margin": 1}),
    ("predictive (m=0)", lambda: PredictiveTilingPolicy(), {"margin": 0}),
    ("predictive (markov)", lambda: PredictiveTilingPolicy(), {"margin": 0, "predictor": "markov"}),
    ("predictive (oracle)", lambda: PredictiveTilingPolicy(), {"margin": 0, "predictor": "oracle"}),
]


def run_policy(db, video, trace, rate, label, policy_factory, overrides):
    config = SessionConfig(
        policy=policy_factory(),
        bandwidth=ConstantBandwidth(rate),
        predictor=overrides.get("predictor", "static"),
        margin=overrides.get("margin", 1),
    )
    return db.serve(video, (trace, config))


@pytest.mark.benchmark(group="e1")
def test_e1_bandwidth_by_policy(benchmark, bench_db, viewer_trace, naive_rate):
    rows = []
    reports = {}
    for video in VIDEOS:
        rate = naive_rate[video]
        for label, factory, overrides in POLICIES:
            report = run_policy(
                bench_db, video, viewer_trace, rate, label, factory, overrides
            )
            reports[(video, label)] = report
        baseline = reports[(video, "naive")]
        for label, _, _ in POLICIES:
            report = reports[(video, label)]
            rows.append(
                {
                    "video": video,
                    "policy": label,
                    "bytes": report.total_bytes,
                    "savings_vs_naive_%": round(100 * report.bytes_saved_vs(baseline), 1),
                    "stalls_s": round(report.stall_time, 2),
                }
            )
    emit_table("E1: delivered bytes by policy", rows, RESULTS_DIR / "e1_bandwidth.txt")

    # Shape checks: the figure's qualitative claims must hold.
    for video in VIDEOS:
        naive = reports[(video, "naive")].total_bytes
        predictive = reports[(video, "predictive (m=0)")].total_bytes
        assert predictive < 0.65 * naive, f"{video}: expected >35% savings"
        # The oracle ships exactly the true visible set: far below naive,
        # below the hedged margin-1 variant, and close to the margin-0
        # variant (which may undershoot it by under-predicting).
        oracle = reports[(video, "predictive (oracle)")].total_bytes
        hedged = reports[(video, "predictive (m=1)")].total_bytes
        assert oracle < 0.65 * naive
        assert oracle < hedged
        assert 0.8 * predictive < oracle < 1.2 * predictive

    # Timed kernel: one full predictive session on the first video.
    video = VIDEOS[0]
    benchmark.pedantic(
        run_policy,
        args=(
            bench_db,
            video,
            viewer_trace,
            naive_rate[video],
            "predictive (m=0)",
            lambda: PredictiveTilingPolicy(),
            {"margin": 0},
        ),
        rounds=1,
        iterations=1,
    )
