"""E12 — extension: viewers per link under shared-bottleneck delivery.

The demo's operational pitch is scale: serve more headsets from the same
uplink. Here many viewers share one link whose capacity would carry
exactly two naive full-quality streams; the sweep counts how many viewers
each policy sustains before rebuffering appears. Predictive tiling's
byte savings convert directly into viewer capacity.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantBandwidth,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
)
from repro.bench.harness import emit_table
from repro.core.multisession import SharedLinkStreamer
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import SimulatedLink
from repro.workloads.users import ViewerPopulation

from bench_config import DURATION, RESULTS_DIR

VIDEO = "venice"
VIEWER_COUNTS = [2, 4, 8]


def make_sessions(count, policy_factory, use_estimator):
    population = ViewerPopulation(seed=55)
    sessions = []
    for user in range(count):
        sessions.append(
            (
                VIDEO,
                population.trace(user, DURATION, rate=10.0),
                SessionConfig(
                    policy=policy_factory(),
                    bandwidth=ConstantBandwidth(1e9),  # ignored in shared mode
                    predictor="static",
                    margin=0,
                    estimator=HarmonicMeanEstimator() if use_estimator else None,
                ),
            )
        )
    return sessions


@pytest.mark.benchmark(group="e12")
def test_e12_shared_link_capacity(benchmark, bench_db, naive_rate):
    link_capacity = 2.0 * naive_rate[VIDEO]  # room for exactly two naive viewers
    streamer = SharedLinkStreamer(bench_db.storage, bench_db.prediction)
    rows = []
    stalls = {}
    for label, factory, estimator in [
        ("naive", NaiveFullQuality, False),
        ("predictive", PredictiveTilingPolicy, True),
    ]:
        for count in VIEWER_COUNTS:
            reports = streamer.serve_all(
                make_sessions(count, factory, estimator),
                SimulatedLink(ConstantBandwidth(link_capacity)),
            )
            total_stall = sum(report.stall_time for report in reports)
            stalls[(label, count)] = total_stall
            rows.append(
                {
                    "policy": label,
                    "viewers": count,
                    "stall_s_total": round(total_stall, 2),
                    "stall_s_per_viewer": round(total_stall / count, 2),
                    "bytes_per_viewer": sum(r.total_bytes for r in reports) // count,
                    "visible_at_best_%": round(
                        100
                        * sum(r.mean_visible_at_best for r in reports)
                        / count,
                        1,
                    ),
                }
            )
    emit_table(
        "E12: viewers sharing a 2-naive-stream link", rows, RESULTS_DIR / "e12_shared.txt"
    )

    # Shape checks: at 2 viewers both policies fit; beyond, naive
    # rebuffers while predictive sustains more viewers on the same wire.
    assert stalls[("naive", 2)] < 1.0
    assert stalls[("naive", 8)] > 3.0
    assert stalls[("predictive", 4)] < stalls[("naive", 4)]
    assert stalls[("predictive", 8)] < stalls[("naive", 8)] / 2

    benchmark.pedantic(
        streamer.serve_all,
        args=(
            make_sessions(2, PredictiveTilingPolicy, True),
            SimulatedLink(ConstantBandwidth(link_capacity)),
        ),
        rounds=1,
        iterations=1,
    )
